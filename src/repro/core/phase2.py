"""Phase II: locating on-path traffic observers hop by hop.

For each problematic path, the tracer re-sends the decoy with initial TTL
1..path-length (each TTL yields a fresh identifier, hence a fresh unique
domain).  After the observation window, the smallest TTL whose probe
triggered unsolicited requests gives the observer's hop distance from the
VP; the ICMP Time-Exceeded message returned for that TTL reveals the
observer's address.  HTTP/TLS probes are sent without a prior TCP
handshake (Section 3: holding connections open for 64 TTL steps would
burden the destination servers).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.campaign import Campaign, PathInfo
from repro.core.correlate import CorrelationResult, Correlator
from repro.topology.model import TopologyModel


@dataclass
class TracerouteProbeSet:
    """All probes sent down one problematic path."""

    info: PathInfo
    protocol: str
    destination: object
    plan_index: int = -1
    """Position of this traceroute in the deterministic Phase II plan —
    orders cross-shard merges of probe records and locations."""
    domains_by_ttl: Dict[int, str] = field(default_factory=dict)
    icmp_reporters: Dict[int, str] = field(default_factory=dict)
    """TTL -> address that returned Time-Exceeded for that probe."""


@dataclass
class ObserverLocation:
    """Phase II verdict for one problematic path."""

    vp_id: str
    vp_country: str
    destination_address: str
    destination_name: str
    protocol: str
    path_length: int
    trigger_ttl: Optional[int]
    """Smallest initial TTL whose probe triggered unsolicited requests;
    None when no probe triggered within the window."""
    observer_address: Optional[str]
    """ICMP-revealed address of the observer hop (None at destination or
    when the hop is ICMP-silent)."""
    observer_asn: Optional[int]
    observer_country: Optional[str]

    @property
    def located(self) -> bool:
        return self.trigger_ttl is not None

    @property
    def at_destination(self) -> bool:
        return self.trigger_ttl is not None and self.trigger_ttl >= self.path_length

    def normalized_hop(self) -> Optional[int]:
        if self.trigger_ttl is None:
            return None
        position = min(self.trigger_ttl, self.path_length)
        return TopologyModel.normalized_hop(position, self.path_length)


class HopByHopTracer:
    """Runs Phase II over a set of problematic paths."""

    def __init__(self, campaign: Campaign):
        self.campaign = campaign
        self.eco = campaign.eco
        self.probe_sets: List[TracerouteProbeSet] = []

    def schedule_traceroute(self, info: PathInfo, protocol: str,
                            destination: object,
                            plan_index: int = -1) -> TracerouteProbeSet:
        """Queue probes with TTL 1..path-length for one path.

        Initial TTLs beyond the path length behave identically to
        TTL = path length (the decoy is simply delivered), so probing the
        full 1..64 range of the paper adds no information in simulation;
        the configured ``phase2_max_ttl`` still caps pathological paths.
        """
        sim = self.eco.sim
        probe_set = TracerouteProbeSet(info=info, protocol=protocol,
                                       destination=destination,
                                       plan_index=plan_index)
        max_ttl = min(info.path.length, self.campaign.config.phase2_max_ttl)
        send_time = sim.now()
        for ttl in range(1, max_ttl + 1):
            sim.schedule_at(
                send_time,
                lambda ttl=ttl, probe_set=probe_set: self._send_probe(probe_set, ttl),
                label=f"traceroute:{protocol}",
            )
            send_time += self.campaign.config.send_spacing
        self.probe_sets.append(probe_set)
        return probe_set

    def _send_probe(self, probe_set: TracerouteProbeSet, ttl: int) -> None:
        outcome = self.campaign.send_decoy(
            probe_set.info, probe_set.protocol, ttl=ttl, phase=2,
            destination=probe_set.destination,
            plan_key=(probe_set.plan_index, ttl),
        )
        probe_set.domains_by_ttl[ttl] = outcome.record.domain
        if outcome.transit.icmp is not None:
            probe_set.icmp_reporters[ttl] = outcome.transit.icmp.reporter

    def locate(self, correlation: CorrelationResult) -> List[ObserverLocation]:
        """Resolve each probe set to an observer location.

        ``correlation`` must come from correlating the full log against
        the campaign ledger (phase=2): a probe "triggered" when at least
        one unsolicited request bears its domain.
        """
        triggered_domains = {event.decoy.domain for event in correlation.events}
        locations: List[ObserverLocation] = []
        for probe_set in self.probe_sets:
            info = probe_set.info
            trigger_ttl: Optional[int] = None
            for ttl in sorted(probe_set.domains_by_ttl):
                if probe_set.domains_by_ttl[ttl] in triggered_domains:
                    trigger_ttl = ttl
                    break
            observer_address: Optional[str] = None
            observer_asn: Optional[int] = None
            observer_country: Optional[str] = None
            if trigger_ttl is not None and trigger_ttl < info.path.length:
                observer_address = probe_set.icmp_reporters.get(trigger_ttl)
                if observer_address is not None:
                    hop = info.path.hop_at(trigger_ttl)
                    observer_asn = hop.asn
                    observer_country = hop.country
            destination = probe_set.destination
            locations.append(
                ObserverLocation(
                    vp_id=info.vp.vp_id,
                    vp_country=info.vp.country,
                    destination_address=info.destination_address,
                    destination_name=getattr(destination, "name",
                                             getattr(destination, "site", "")),
                    protocol=probe_set.protocol,
                    path_length=info.path.length,
                    trigger_ttl=trigger_ttl,
                    observer_address=observer_address,
                    observer_asn=observer_asn,
                    observer_country=observer_country,
                )
            )
        return locations

"""Shared columnar-storage primitives: string interning and merge order.

The internet-scale stores (:class:`repro.core.correlate.DecoyLedger`,
:class:`repro.honeypot.logstore.LogStore`) keep one ``array``-of-struct
column per field instead of one Python object per row.  Two pieces are
common to every columnar consumer and live here:

* :class:`StringTable` — first-use-order string interning.  This is the
  same machinery the wire codec's encoder uses for its payload string
  tables (``core/wire.py`` builds its ``_Encoder`` on it), lifted out so
  in-memory stores can share it: domains, addresses, protocol labels,
  and country codes repeat across millions of rows, and a 4-byte column
  reference replaces a Python string pointer + object.
* :func:`merged_order` — the deterministic (time, shard position,
  within-shard index) interleave order used by cross-shard merges, with
  a numpy fast path when numpy is importable (it is optional — the
  stdlib path is always available and produces the identical order).

Nothing in this module imports from ``core/wire`` or the stores, so the
dependency arrow points one way: wire/ledger/log build on columnar.
"""

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # numpy is an optional accelerator, never a requirement
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

HAS_NUMPY = _np is not None

#: Column sentinel for "this optional string/int field is None".
NONE_REF = -1


class StringTable:
    """First-use-order string interning: value -> dense integer id.

    Ids are assigned 0, 1, 2, ... in the order values are first seen, so
    a table built by replaying the same value sequence is identical —
    the property the wire format relies on for byte-stable payloads and
    the columnar stores rely on for cheap equality (same id == same
    string).
    """

    __slots__ = ("_ids", "_values")

    def __init__(self):
        self._ids: Dict[str, int] = {}
        self._values: List[str] = []

    def intern(self, value: str) -> int:
        """The id of ``value``, assigning the next dense id on first use."""
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self._values)
            self._ids[value] = ident
            self._values.append(value)
        return ident

    def intern_opt(self, value: Optional[str]) -> int:
        """Like :meth:`intern`, mapping None to :data:`NONE_REF`."""
        if value is None:
            return NONE_REF
        return self.intern(value)

    def value(self, ident: int) -> str:
        return self._values[ident]

    def value_opt(self, ident: int) -> Optional[str]:
        if ident == NONE_REF:
            return None
        return self._values[ident]

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: str) -> bool:
        return value in self._ids

    def values(self) -> Tuple[str, ...]:
        """All interned strings in id order (id == position)."""
        return tuple(self._values)


def merged_order(
    shard_times: Sequence[Sequence[float]],
) -> Iterable[Tuple[int, int]]:
    """(shard position, within-shard index) pairs in merged time order.

    The order key is ``(time, shard position, index)`` — each shard's
    times are already non-decreasing (simulators append monotonically),
    and position/index break cross-shard ties stably, so the result
    depends only on the inputs, never on worker completion order.

    With numpy available the merge is one stable argsort over the
    concatenated time columns; the stdlib fallback is a k-way heap merge.
    Both paths produce the identical sequence.

    Each shard's times must be non-decreasing — a violation raises
    rather than silently reordering (a stable sort would hide it; the
    heap merge would garble it).
    """
    for position, times in enumerate(shard_times):
        previous = None
        for time in times:
            if previous is not None and time < previous:
                raise ValueError(
                    f"shard {position} not in time order: "
                    f"{time} after {previous}"
                )
            previous = time
    if _np is not None:
        sizes = [len(times) for times in shard_times]
        total = sum(sizes)
        if total == 0:
            return
        flat = _np.empty(total, dtype=_np.float64)
        offset = 0
        for times, size in zip(shard_times, sizes):
            flat[offset:offset + size] = times
            offset += size
        # Concatenation order is (position, index); a *stable* sort by
        # time alone therefore yields exactly (time, position, index).
        starts = []
        offset = 0
        for size in sizes:
            starts.append(offset)
            offset += size
        import bisect
        for flat_index in _np.argsort(flat, kind="stable"):
            position = bisect.bisect_right(starts, int(flat_index)) - 1
            yield position, int(flat_index) - starts[position]
        return
    yield from (
        (position, index)
        for _, position, index in heapq.merge(
            *(
                ((time, position, index) for index, time in enumerate(times))
                for position, times in enumerate(shard_times)
            )
        )
    )

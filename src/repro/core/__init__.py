"""The paper's primary contribution: the traffic-shadowing measurement pipeline.

* :mod:`repro.core.identifier` — the decoy-specific identifier codec
  (time, VP, destination, TTL encoded into one DNS label).
* :mod:`repro.core.decoy` — decoy construction over DNS, HTTP, and TLS.
* :mod:`repro.core.config` — experiment configuration.
* :mod:`repro.core.ecosystem` — instantiates the simulated exhibitor
  ecosystem the pipeline measures.
* :mod:`repro.core.campaign` — Phase I: spreading decoys, finding
  problematic paths.
* :mod:`repro.core.phase2` — Phase II: hop-by-hop observer localization.
* :mod:`repro.core.correlate` — unsolicited-request classification.
* :mod:`repro.core.experiment` — end-to-end orchestration.
"""

from repro.core.config import ExperimentConfig
from repro.core.correlate import Correlator, DecoyLedger, DecoyRecord, ShadowingEvent
from repro.core.decoy import Decoy, DecoyFactory
from repro.core.experiment import Experiment, ExperimentResult
from repro.core.identifier import DecoyIdentity, IdentifierCodec, IdentifierError

__all__ = [
    "DecoyIdentity",
    "IdentifierCodec",
    "IdentifierError",
    "Decoy",
    "DecoyFactory",
    "ExperimentConfig",
    "DecoyLedger",
    "DecoyRecord",
    "Correlator",
    "ShadowingEvent",
    "Experiment",
    "ExperimentResult",
]

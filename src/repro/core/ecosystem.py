"""Instantiation of the simulated exhibitor ecosystem.

This is where the paper's *findings* become the simulation's *ground
truth*: per-resolver shadowing profiles (Section 5.1), on-path sniffer
deployments in the named ASes (Tables 2/3, Section 5.2), destination web
server behaviour, origin pools with their blocklist rates, and the DNS
interception noise of Appendix E.  The measurement pipeline then has to
*recover* these shapes from honeypot logs alone — that recovery is what
the benchmarks compare against the paper.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import ExperimentConfig
from repro.datasets.asns import synthetic_asn
from repro.datasets.resolvers import (
    ALL_DNS_DESTINATIONS,
    DnsDestination,
    RESOLVER_H_NAMES,
)
from repro.datasets.tranco import WebDestination, generate_web_destinations, sample_web_destinations
from repro.honeypot.deployment import HoneypotDeployment
from repro.intel.blocklist import Blocklist
from repro.intel.directory import IpDirectory
from repro.observers.exhibitor import GroundTruth, ShadowExhibitor, UnsolicitedEmitter
from repro.observers.interceptor import DnsInterceptor
from repro.observers.onpath import ObserverDeployment, SnifferSpec
from repro.observers.policy import AddressAllocator, OriginGroup, OriginPool, ShadowPolicy
from repro.observers.resolver import ResolverModel, ResolverProfile
from repro.observers.webdest import WebDestinationBehavior, WebDestinationModel
from repro.simkit.distributions import Empirical, LogNormal, Mixture, Uniform
from repro.simkit.events import Simulator
from repro.simkit.rng import RandomRouter
from repro.telemetry.registry import registry_for
from repro.simkit.units import DAY, HOUR, MINUTE
from repro.topology.model import AnycastPresence, TopologyConfig, TopologyModel
from repro.vpn.platform import VpnPlatform

# Synthetic origin networks shared by several exhibitors.
AS_SEC_PROXY_US = synthetic_asn(50_001)   # security-vendor probing proxies
AS_SEC_PROXY_EU = synthetic_asn(50_002)
AS_CN_CLOUD = synthetic_asn(50_003)       # CN cloud platform receiving resolver data
AS_RU_CLOUD = synthetic_asn(50_004)
AS_ALT_DNS = synthetic_asn(50_005)        # interceptors' alternative resolvers
AS_NOD_NOISE = synthetic_asn(50_006)      # NOD-churn scanner pool (noise model)

# Resolver operator networks (real where the paper names them).
RESOLVER_ASNS: Dict[str, Tuple[int, str]] = {
    "Yandex": (13238, "RU"),
    "Google": (15169, "US"),
    "Cloudflare": (13335, "US"),
    "114DNS": (9808, "CN"),
}


def _resolver_asn(destination: DnsDestination) -> int:
    if destination.name in RESOLVER_ASNS:
        return RESOLVER_ASNS[destination.name][0]
    return synthetic_asn(40_000 + sum(destination.name.encode()) % 4096)


@dataclass
class Ecosystem:
    """Everything a campaign interacts with, fully wired."""

    config: ExperimentConfig
    router: RandomRouter
    sim: Simulator
    directory: IpDirectory
    blocklist: Blocklist
    deployment: HoneypotDeployment
    ground_truth: GroundTruth
    topology: TopologyModel
    platform: VpnPlatform
    emitter: UnsolicitedEmitter
    exhibitors: Dict[str, ShadowExhibitor]
    resolver_models: Dict[str, ResolverModel]
    """Keyed by destination address."""
    dns_destinations: Tuple[DnsDestination, ...]
    web_pool: List[WebDestination]
    web_destinations: List[WebDestination]
    web_model: WebDestinationModel
    observer_deployment: ObserverDeployment
    allocator: AddressAllocator
    interceptors: Dict[str, Optional[DnsInterceptor]]
    """Per-router interception decision cache, keyed by router address."""
    interceptor_router_fraction: float
    faults: object = None
    """The run's compiled :class:`~repro.faults.FaultPlan`, or None when
    ``config.faults`` injects nothing.  Campaign, scheduler, and honeypot
    log all consult this one plan; since every decision is a keyed draw
    on the fault seed, each shard worker compiles an identical plan from
    the config."""
    telemetry: object = None
    """The run's :class:`~repro.telemetry.MetricsRegistry` (or the no-op
    backend when ``config.telemetry`` is off).  Every instrumented
    component records into this one registry; sharded runs merge the
    per-worker registries deterministically (see docs/OBSERVABILITY.md)."""
    ciphertext_deployment: object = None
    """The run's :class:`~repro.observers.ciphertext.CiphertextDeployment`,
    or None when ``config.ciphertext_observer_share`` is zero.  Placement
    and classifier draws are keyed by hop address, so the same routers
    observe in every shard layout (see docs/OBSERVERS.md)."""

    def interceptor_at(self, hop_address: str) -> Optional[DnsInterceptor]:
        """The interceptor at this router, deciding on first sight.

        Interception devices sit at client-side access routers (the paper
        cites residential-router hijacking); the campaign consults this for
        the first hop of each path and for pair-resolver probes.
        """
        if hop_address in self.interceptors:
            return self.interceptors[hop_address]
        interceptor: Optional[DnsInterceptor] = None
        # Keyed by the router address (not first-sight order) so the same
        # routers intercept regardless of which path — or which shard of a
        # partitioned campaign — materializes them first.
        draw = self.router.substreams("interceptor.deploy").derive(hop_address)
        if draw.random() < self.interceptor_router_fraction:
            alt_address = self.allocator.allocate(f"altdns:{hop_address}")
            self.directory.register(alt_address, AS_ALT_DNS, "??", role="alt-resolver")
            interceptor = DnsInterceptor(
                hop_address=hop_address,
                alt_resolver_address=alt_address,
                sim=self.sim,
                deployment=self.deployment,
                rng=self.router.stream(f"interceptor:{hop_address}"),
                streams=self.router.substreams("interceptor.behavior"),
                metrics=self.telemetry,
            )
        self.interceptors[hop_address] = interceptor
        return interceptor


def build_ecosystem(config: ExperimentConfig) -> Ecosystem:
    """Construct the full simulated world for one experiment."""
    router = RandomRouter(config.seed)
    telemetry = registry_for(config.telemetry)
    sim = Simulator(metrics=telemetry)
    directory = IpDirectory()
    blocklist = Blocklist()
    allocator = AddressAllocator()
    faults = None
    if config.faults is not None and config.faults.any_faults:
        from repro.faults import FaultPlan
        faults = FaultPlan(config.faults)
    log = None
    if faults is not None and config.faults.affects_log:
        from repro.honeypot.deployment import FaultInjectingLog
        log = FaultInjectingLog(sim=sim, faults=faults, metrics=telemetry)
    deployment = HoneypotDeployment(zone=config.zone, log=log,
                                    metrics=telemetry)
    ground_truth = GroundTruth()
    emitter = UnsolicitedEmitter(deployment, sim, router.stream("emitter"),
                                 metrics=telemetry)

    def pool(name: str, groups: List[OriginGroup]) -> OriginPool:
        return OriginPool(
            name=name,
            groups=groups,
            allocator=allocator,
            directory=directory,
            blocklist=blocklist,
            rng=router.stream(f"pool:{name}"),
        )

    # Behavioural draws are keyed substreams (pure functions of seed and
    # decision key) so outcomes survive any partitioning of the campaign;
    # the sequential streams below keep feeding unobservable wire fields.
    policies = _build_policies(pool)
    exhibitors = {
        name: ShadowExhibitor(
            policy=policy,
            sim=sim,
            emitter=emitter,
            rng=router.stream(f"exhibitor:{name}"),
            ground_truth=ground_truth,
            streams=router.substreams("exhibitor.behavior"),
            metrics=telemetry,
            retention=_retention_store_for(name, config),
        )
        for name, policy in policies.items()
    }

    dns_destinations = ALL_DNS_DESTINATIONS
    if config.dns_destination_count is not None:
        dns_destinations = dns_destinations[: config.dns_destination_count]
    resolver_profiles = _build_resolver_profiles(dns_destinations, config)
    resolver_models: Dict[str, ResolverModel] = {}
    for profile in resolver_profiles:
        asn = _resolver_asn(profile.destination)
        directory.register(
            profile.destination.address, asn, profile.destination.country, role="resolver"
        )
        egress = allocator.allocate(f"egress:{profile.destination.name}")
        directory.register(egress, asn, profile.destination.country, role="resolver-egress")
        exhibitor = (
            exhibitors[profile.shadow_exhibitor]
            if profile.shadow_exhibitor is not None
            else None
        )
        resolver_models[profile.destination.address] = ResolverModel(
            profile=profile,
            sim=sim,
            deployment=deployment,
            exhibitor=exhibitor,
            egress_address=egress,
            rng=router.stream(f"resolver:{profile.destination.name}"),
            streams=router.substreams("resolver.behavior"),
            metrics=telemetry,
        )

    # Synthetic Tranco pool and the sampled decoy targets.
    web_pool = generate_web_destinations(router, site_count=config.web_site_count)
    web_destinations = sample_web_destinations(router, web_pool, config.web_destination_count)
    for destination in web_destinations:
        directory.register(destination.address, destination.asn,
                           destination.country, role="web")

    topology = TopologyModel(router, _build_topology_config(web_destinations))

    platform = VpnPlatform(router, vp_scale=config.vp_scale)
    for vp in platform.vantage_points:
        directory.register(vp.address, vp.asn, vp.country, role="vp")

    web_model = WebDestinationModel(
        behavior=WebDestinationBehavior(
            tls_shadow_rate_by_country={"CN": 0.38, "AD": 0.50, "US": 0.24, "CA": 0.20},
            http_shadow_rate_by_country={"CN": 0.04},
            default_tls_rate=0.16,
            default_http_rate=0.01,
        ),
        exhibitors_by_country={
            "CN": exhibitors["dest.web.cn"],
        },
        default_exhibitor=exhibitors["dest.web.global"],
        rng=router.stream("webdest"),
        streams=router.substreams("webdest.decisions"),
        metrics=telemetry,
    )

    observer_deployment = ObserverDeployment(
        specs=_build_sniffer_specs(config.sniffer_density_scale),
        exhibitors=exhibitors,
        zone=config.zone,
        rng=router.stream("sniffer.deploy"),
        streams=router.substreams("sniffer.placement"),
        metrics=telemetry,
    )

    ciphertext_deployment = None
    if config.ciphertext_observer_share > 0.0:
        from repro.observers.ciphertext import CiphertextDeployment
        from repro.observers.placement import PlacementPlanner
        extra_backbones = tuple(
            asn
            for asns in topology.config.named_backbones.values()
            for asn in asns
        )
        ciphertext_deployment = CiphertextDeployment(
            planner=PlacementPlanner(
                share=config.ciphertext_observer_share,
                extra_backbone_asns=extra_backbones,
            ),
            zone=config.zone,
            threshold=config.ciphertext_threshold,
            fpr=config.ciphertext_fpr,
            link_threshold=config.ciphertext_link_threshold,
            placement_streams=router.substreams("ciphertext.placement"),
            classify_streams=router.substreams("ciphertext.classify"),
            clock=sim.now,
            metrics=telemetry,
        )

    return Ecosystem(
        config=config,
        router=router,
        sim=sim,
        directory=directory,
        blocklist=blocklist,
        deployment=deployment,
        ground_truth=ground_truth,
        topology=topology,
        platform=platform,
        emitter=emitter,
        exhibitors=exhibitors,
        resolver_models=resolver_models,
        dns_destinations=dns_destinations,
        web_pool=web_pool,
        web_destinations=web_destinations,
        web_model=web_model,
        observer_deployment=observer_deployment,
        allocator=allocator,
        interceptors={},
        interceptor_router_fraction=(
            config.interceptor_asn_fraction if config.interceptors_enabled else 0.0
        ),
        faults=faults,
        telemetry=telemetry,
        ciphertext_deployment=ciphertext_deployment,
    )


def _retention_store_for(exhibitor_name: str, config: ExperimentConfig):
    """The exhibitor's bounded retention store, or None (unbounded).

    Capacities are per observer class — the ``onpath.`` / ``resolver.``
    / ``dest.`` prefix of the exhibitor name — mirroring Section 5.2's
    observation that on-the-wire observers hold data for less time than
    destination operators with warehouses.
    """
    capacity = {
        "onpath": config.onpath_retention_capacity,
        "resolver": config.resolver_retention_capacity,
        "dest": config.destination_retention_capacity,
    }.get(exhibitor_name.split(".", 1)[0])
    if capacity is None:
        return None
    from repro.observers.retention import RetentionStore
    return RetentionStore(capacity=capacity)


def _build_policies(pool) -> Dict[str, ShadowPolicy]:
    """The behavioural fingerprints of every exhibitor class."""

    # Shared probing-proxy origin groups: the security-vendor proxies whose
    # addresses hit IP blocklists (Section 5.1: 57% HTTP / 72% HTTPS).
    def prober_groups(weight: float) -> List[OriginGroup]:
        return [
            OriginGroup(AS_SEC_PROXY_US, "US", weight * 0.6, blocklist_rate=0.57,
                        protocols=("http",), address_count=16),
            OriginGroup(AS_SEC_PROXY_EU, "DE", weight * 0.4, blocklist_rate=0.72,
                        protocols=("https",), address_count=16),
        ]

    policies: Dict[str, ShadowPolicy] = {}

    # -- Resolver_h destination exhibitors --------------------------------
    policies["resolver.yandex"] = ShadowPolicy(
        name="resolver.yandex",
        delay=Mixture([
            (0.18, Uniform(2 * HOUR, 20 * HOUR)),
            (0.42, LogNormal(median=2 * DAY, sigma=0.7)),
            (0.40, LogNormal(median=12 * DAY, sigma=0.35)),
        ]),
        uses=Empirical([(1, 2, 0.18), (3, 6, 0.57), (7, 12, 0.25)]),
        protocol_weights={"dns": 0.82, "http": 0.11, "https": 0.07},
        origin_pool=pool("yandex", [
            OriginGroup(13238, "RU", 0.28, blocklist_rate=0.04, protocols=("dns",)),
            OriginGroup(15169, "US", 0.27, blocklist_rate=0.02, protocols=("dns",)),
            OriginGroup(AS_RU_CLOUD, "RU", 0.15, blocklist_rate=0.25, protocols=("dns",)),
        ] + prober_groups(0.30)),
        observe_probability=0.995,
    )
    policies["resolver.114dns"] = ShadowPolicy(
        name="resolver.114dns",
        delay=Mixture([
            (0.25, Uniform(1 * HOUR, 12 * HOUR)),
            (0.45, LogNormal(median=1.5 * DAY, sigma=0.6)),
            (0.30, LogNormal(median=8 * DAY, sigma=0.4)),
        ]),
        uses=Empirical([(1, 2, 0.25), (3, 6, 0.55), (7, 10, 0.20)]),
        protocol_weights={"dns": 0.80, "http": 0.12, "https": 0.08},
        origin_pool=pool("114dns", [
            OriginGroup(15169, "US", 0.30, blocklist_rate=0.03, protocols=("dns",)),
            OriginGroup(4134, "CN", 0.22, blocklist_rate=0.08, protocols=("dns",)),
            OriginGroup(9808, "CN", 0.22, blocklist_rate=0.05, protocols=("dns",)),
            OriginGroup(AS_CN_CLOUD, "CN", 0.12, blocklist_rate=0.15, protocols=("dns",)),
        ] + prober_groups(0.14)),
        observe_probability=0.88,
    )
    policies["resolver.onedns"] = ShadowPolicy(
        name="resolver.onedns",
        delay=Mixture([
            (0.45, LogNormal(median=1 * DAY, sigma=0.5)),
            (0.55, LogNormal(median=4 * DAY, sigma=0.6)),
        ]),
        uses=Empirical([(1, 3, 0.6), (4, 7, 0.4)]),
        protocol_weights={"dns": 0.85, "http": 0.10, "https": 0.05},
        origin_pool=pool("onedns", [
            OriginGroup(15169, "US", 0.4, blocklist_rate=0.03, protocols=("dns",)),
            OriginGroup(AS_CN_CLOUD, "CN", 0.35, blocklist_rate=0.12, protocols=("dns",)),
        ] + prober_groups(0.25)),
        observe_probability=0.78,
    )
    policies["resolver.dnspai"] = ShadowPolicy(
        name="resolver.dnspai",
        delay=Mixture([
            (0.4, LogNormal(median=1 * DAY, sigma=0.5)),
            (0.6, LogNormal(median=5 * DAY, sigma=0.5)),
        ]),
        uses=Empirical([(1, 3, 0.7), (4, 6, 0.3)]),
        protocol_weights={"dns": 0.88, "http": 0.08, "https": 0.04},
        origin_pool=pool("dnspai", [
            OriginGroup(15169, "US", 0.35, blocklist_rate=0.03, protocols=("dns",)),
            OriginGroup(AS_CN_CLOUD, "CN", 0.40, blocklist_rate=0.12, protocols=("dns",)),
        ] + prober_groups(0.25)),
        observe_probability=0.72,
    )
    policies["resolver.vercara"] = ShadowPolicy(
        name="resolver.vercara",
        delay=LogNormal(median=6 * HOUR, sigma=0.8),
        uses=Empirical([(1, 2, 0.7), (3, 5, 0.3)]),
        protocol_weights={"dns": 1.0},
        origin_pool=pool("vercara", [
            OriginGroup(15169, "US", 0.5, blocklist_rate=0.03, protocols=("dns",)),
            OriginGroup(AS_SEC_PROXY_US, "US", 0.5, blocklist_rate=0.10, protocols=("dns",)),
        ]),
        observe_probability=0.62,
    )

    # -- on-path exhibitors ------------------------------------------------
    policies["onpath.chinanet"] = ShadowPolicy(
        name="onpath.chinanet",
        delay=Mixture([
            (0.30, Uniform(30, 30 * MINUTE)),
            (0.50, LogNormal(median=3 * HOUR, sigma=0.8)),
            (0.20, LogNormal(median=1.5 * DAY, sigma=0.5)),
        ]),
        uses=Empirical([(1, 2, 0.6), (3, 5, 0.4)]),
        protocol_weights={"http": 0.66, "https": 0.17, "dns": 0.17},
        origin_pool=pool("chinanet", [
            OriginGroup(4134, "CN", 0.45, blocklist_rate=0.45),
            OriginGroup(140292, "CN", 0.30, blocklist_rate=0.50),
            OriginGroup(AS_CN_CLOUD, "CN", 0.15, blocklist_rate=0.55),
            OriginGroup(AS_SEC_PROXY_US, "US", 0.10, blocklist_rate=0.60,
                        protocols=("https",)),
        ]),
        observe_probability=1.0,
    )
    policies["onpath.rogers"] = ShadowPolicy(
        name="onpath.rogers",
        delay=Uniform(60, 6 * HOUR),
        uses=Empirical([(1, 2, 0.8), (3, 4, 0.2)]),
        protocol_weights={"dns": 1.0},
        origin_pool=pool("rogers", [
            OriginGroup(29988, "CA", 1.0, blocklist_rate=0.10),
        ]),
        observe_probability=1.0,
    )
    policies["onpath.constantcontact"] = ShadowPolicy(
        name="onpath.constantcontact",
        delay=Uniform(120, 12 * HOUR),
        uses=Empirical([(1, 2, 0.9), (3, 3, 0.1)]),
        protocol_weights={"dns": 1.0},
        origin_pool=pool("constantcontact", [
            OriginGroup(40444, "US", 1.0, blocklist_rate=0.15),
        ]),
        observe_probability=1.0,
    )
    policies["onpath.dns.cloud"] = ShadowPolicy(
        name="onpath.dns.cloud",
        delay=Mixture([
            (0.5, Uniform(5 * MINUTE, 2 * HOUR)),
            (0.5, LogNormal(median=8 * HOUR, sigma=0.7)),
        ]),
        uses=Empirical([(1, 2, 0.7), (3, 5, 0.3)]),
        protocol_weights={"dns": 0.7, "http": 0.2, "https": 0.1},
        origin_pool=pool("dns.cloud", [
            OriginGroup(203020, "IN", 0.35, blocklist_rate=0.30),
            OriginGroup(21859, "US", 0.35, blocklist_rate=0.20),
            OriginGroup(4808, "CN", 0.30, blocklist_rate=0.25),
        ]),
        observe_probability=1.0,
    )

    # -- destination web servers --------------------------------------------
    policies["dest.web.cn"] = ShadowPolicy(
        name="dest.web.cn",
        delay=Mixture([
            (0.35, LogNormal(median=6 * HOUR, sigma=0.8)),
            (0.65, LogNormal(median=2 * DAY, sigma=0.6)),
        ]),
        uses=Empirical([(1, 2, 0.6), (3, 6, 0.4)]),
        protocol_weights={"dns": 0.35, "http": 0.40, "https": 0.25},
        origin_pool=pool("dest.cn", [
            OriginGroup(4134, "CN", 0.4, blocklist_rate=0.45),
            OriginGroup(AS_CN_CLOUD, "CN", 0.35, blocklist_rate=0.50),
            OriginGroup(AS_SEC_PROXY_US, "US", 0.25, blocklist_rate=0.55,
                        protocols=("http", "https")),
        ]),
        observe_probability=0.9,
    )
    policies["dest.web.global"] = ShadowPolicy(
        name="dest.web.global",
        delay=Mixture([
            (0.4, LogNormal(median=10 * HOUR, sigma=0.9)),
            (0.6, LogNormal(median=2.5 * DAY, sigma=0.5)),
        ]),
        uses=Empirical([(1, 2, 0.7), (3, 4, 0.3)]),
        protocol_weights={"dns": 0.4, "http": 0.35, "https": 0.25},
        origin_pool=pool("dest.global", [
            OriginGroup(AS_SEC_PROXY_US, "US", 0.5, blocklist_rate=0.50),
            OriginGroup(AS_SEC_PROXY_EU, "DE", 0.5, blocklist_rate=0.45),
        ]),
        observe_probability=0.9,
    )
    return policies


def _build_resolver_profiles(
    destinations: Tuple[DnsDestination, ...],
    config: Optional[ExperimentConfig] = None,
) -> List[ResolverProfile]:
    """Per-destination DNS behaviour (Section 5.1 / Figure 5)."""
    refresh_probability = 0.0
    refresh_ttl = 3600.0
    if config is not None and config.cache_refreshing_resolvers:
        refresh_probability = 0.35
        refresh_ttl = float(config.wildcard_record_ttl)
    shadow_bindings: Dict[str, Tuple[str, Tuple[str, ...]]] = {
        # name -> (exhibitor policy, shadowing instance countries)
        "Yandex": ("resolver.yandex", ()),
        "114DNS": ("resolver.114dns", ("CN",)),  # Case Study II: CN anycast only
        "OneDNS": ("resolver.onedns", ()),
        "DNSPAI": ("resolver.dnspai", ()),
        "Vercara": ("resolver.vercara", ()),
    }
    profiles: List[ResolverProfile] = []
    for destination in destinations:
        if destination.kind in ("root", "tld"):
            profiles.append(ResolverProfile(
                destination=destination, asn=_resolver_asn(destination),
                recursive=False,
            ))
            continue
        if destination.kind == "self-built":
            profiles.append(ResolverProfile(
                destination=destination, asn=_resolver_asn(destination),
                recursive=True, retry_probability=0.0,
            ))
            continue
        binding = shadow_bindings.get(destination.name)
        profiles.append(ResolverProfile(
            destination=destination,
            asn=_resolver_asn(destination),
            recursive=True,
            # Benign sub-minute retries: the DNS-DNS spike of Figure 4.
            retry_probability=0.45 if binding is None else 0.25,
            retry_count=(1, 3),
            retry_window=50.0,
            shadow_exhibitor=binding[0] if binding else None,
            shadow_countries=binding[1] if binding else (),
            cache_refresh_probability=refresh_probability,
            cache_refresh_ttl=refresh_ttl,
        ))
    return profiles


def _build_sniffer_specs(density_scale: float = 1.0) -> List[SnifferSpec]:
    """On-path DPI deployment (Tables 2/3, Section 5.2).

    ``density_scale`` multiplies every deployment density (clamped to
    1.0): scenarios use it to thin the wire-observer population toward a
    resolver-centralized ecosystem or thicken it toward an interception-
    heavy one without renaming any AS.
    """
    if density_scale != 1.0:
        return [
            SnifferSpec(spec.asn,
                        min(1.0, spec.router_fraction * density_scale),
                        spec.protocols, spec.policy_name)
            for spec in _build_sniffer_specs()
        ]
    return [
        # Chinanet backbone: the dominant HTTP/TLS observer network.  A
        # smaller share of its DPI boxes parse TLS handshakes, keeping the
        # on-path share of TLS observers below the destination share
        # (Table 2: TLS is 65% at destination, 26% mid-path).
        # Deployment densities are tuned so that, like the paper's Figure 3,
        # well under 10-15% of HTTP/TLS client-server paths cross a DPI box
        # while Chinanet still dominates the observer population (Table 3).
        SnifferSpec(4134, 0.08, ("http", "tls"), "onpath.chinanet"),
        SnifferSpec(4134, 0.08, ("http",), "onpath.chinanet"),
        SnifferSpec(23650, 0.08, ("tls",), "onpath.chinanet"),
        SnifferSpec(4812, 0.07, ("tls",), "onpath.chinanet"),
        # Provincial access networks hosting HTTP DPI.
        SnifferSpec(58563, 0.10, ("http",), "onpath.chinanet"),
        SnifferSpec(137697, 0.09, ("http",), "onpath.chinanet"),
        SnifferSpec(140292, 0.09, ("http",), "onpath.chinanet"),
        # North-American observers that only re-query DNS.
        SnifferSpec(40444, 0.15, ("http",), "onpath.constantcontact"),
        SnifferSpec(29988, 0.15, ("http",), "onpath.rogers"),
        # The few DNS wire observers (cloud/ISP upstreams of resolvers).
        # Table 2 finds 99.7% of DNS shadowing at the destination, so these
        # deployments stay sparse.
        SnifferSpec(203020, 0.15, ("dns",), "onpath.dns.cloud"),
        SnifferSpec(21859, 0.15, ("dns",), "onpath.dns.cloud"),
        SnifferSpec(4808, 0.12, ("dns",), "onpath.dns.cloud"),
    ]


def _build_topology_config(web_destinations: List[WebDestination]) -> TopologyConfig:
    """Topology knobs: anycast presence, named backbones, upstream overrides."""
    anycast_presence = {
        "114DNS": AnycastPresence(home="CN", countries=("CN", "US")),
        "Cloudflare": AnycastPresence(home="US", countries=("US", "DE", "SG", "JP", "GB")),
        "Google": AnycastPresence(home="US", countries=("US", "DE", "SG", "JP", "BR")),
        "OpenDNS": AnycastPresence(home="US", countries=("US", "DE", "SG")),
        "Quad9": AnycastPresence(home="US", countries=("US", "DE", "SG", "GB")),
    }
    upstream_overrides: Dict[str, int] = {
        # DNS destinations fronted by the named cloud/ISP networks where the
        # paper's few on-path DNS observers live (Table 3, DNS rows).
        "119.29.29.29": 4808,       # DNSPod behind Unicom Beijing upstream
        "216.146.35.35": 21859,     # Oracle Dyn behind Zenlayer
        "217.160.166.161": 203020,  # OpenNIC behind HostRoyale
    }
    # A slice of US web destinations sits behind Constant Contact.
    for destination in web_destinations:
        if destination.country == "US" and destination.rank % 7 == 0:
            upstream_overrides[destination.address] = 40444
    return TopologyConfig(
        anycast_presence=anycast_presence,
        named_backbones={"CA": (29988,)},
        upstream_as_overrides=upstream_overrides,
    )

"""End-to-end experiment orchestration.

``Experiment(config).run()`` executes the whole paper pipeline:

1. build the simulated world (:mod:`repro.core.ecosystem`),
2. vet the VPN platform and run Phase I (:mod:`repro.core.campaign`),
3. correlate honeypot logs and classify unsolicited requests,
4. sample problematic paths and run Phase II tracerouting,
5. locate observers from minimal trigger TTLs and ICMP reporters.

The returned :class:`ExperimentResult` is the single input every analysis
and benchmark consumes.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.campaign import Campaign, PathInfo
from repro.core.config import ExperimentConfig
from repro.core.correlate import CorrelationResult, Correlator, DecoyLedger
from repro.core.ecosystem import Ecosystem, build_ecosystem
from repro.core.phase2 import HopByHopTracer, ObserverLocation
from repro.honeypot.logstore import LogStore
from repro.vpn.vetting import VettingReport


@dataclass
class ExperimentResult:
    """Everything one experiment run produced."""

    config: ExperimentConfig
    eco: Ecosystem
    campaign: Campaign
    phase1: CorrelationResult
    phase2: CorrelationResult
    locations: List[ObserverLocation]
    vetting: VettingReport
    timings: Dict[str, float] = None
    """Wall-clock seconds per stage ("phase1", "phase2", "correlate") and
    the virtual campaign span ("virtual_span")."""

    @property
    def ledger(self) -> DecoyLedger:
        return self.campaign.ledger

    @property
    def log(self) -> LogStore:
        return self.eco.deployment.log

    def problematic_path_keys(self) -> List[Tuple[str, str, str]]:
        """Distinct (vp_id, destination address, decoy protocol) triples
        whose Phase I decoys triggered unsolicited requests."""
        seen = set()
        ordered = []
        for event in self.phase1.events:
            key = (event.decoy.vp_id, event.decoy.destination_address,
                   event.decoy.protocol)
            if key not in seen:
                seen.add(key)
                ordered.append(key)
        return ordered


class Experiment:
    """Orchestrates one full run."""

    def __init__(self, config: Optional[ExperimentConfig] = None):
        self.config = config if config is not None else ExperimentConfig()

    def run(self) -> ExperimentResult:
        import time as _time

        timings: Dict[str, float] = {}
        started = _time.perf_counter()
        eco = build_ecosystem(self.config)
        timings["build"] = _time.perf_counter() - started

        stage = _time.perf_counter()
        campaign = Campaign(eco)
        campaign.run_phase1()
        timings["phase1"] = _time.perf_counter() - stage

        correlator = Correlator(campaign.ledger, zone=self.config.zone)
        phase1 = correlator.correlate(eco.deployment.log, phase=1)

        stage = _time.perf_counter()
        tracer = HopByHopTracer(campaign)
        self._schedule_phase2(campaign, phase1, tracer)
        eco.sim.run(until=eco.sim.now() + self.config.phase2_observation_window)
        timings["phase2"] = _time.perf_counter() - stage

        # Exhibitors schedule unsolicited requests days out, so Phase I
        # decoys keep drawing traffic during the Phase II window; the final
        # correlation pass covers the complete log, as the paper's offline
        # analysis does.
        stage = _time.perf_counter()
        phase1 = correlator.correlate(eco.deployment.log, phase=1)
        phase2 = correlator.correlate(eco.deployment.log, phase=2)
        locations = tracer.locate(phase2)
        timings["correlate"] = _time.perf_counter() - stage
        timings["total"] = _time.perf_counter() - started
        timings["virtual_span"] = eco.sim.now()
        campaign.close_capture()
        return ExperimentResult(
            config=self.config,
            eco=eco,
            campaign=campaign,
            phase1=phase1,
            phase2=phase2,
            locations=locations,
            vetting=campaign.vetting,
            timings=timings,
        )

    def _schedule_phase2(self, campaign: Campaign, phase1: CorrelationResult,
                         tracer: HopByHopTracer) -> None:
        """Sample problematic paths per destination and queue traceroutes."""
        eco = campaign.eco
        destinations_by_address: Dict[str, object] = {
            destination.address: destination
            for destination in eco.dns_destinations
        }
        for destination in eco.web_destinations:
            destinations_by_address[destination.address] = destination

        per_destination: Dict[Tuple[str, str], int] = {}
        scheduled = set()
        for event in phase1.events:
            decoy = event.decoy
            key = (decoy.vp_id, decoy.destination_address, decoy.protocol)
            if key in scheduled:
                continue
            quota_key = (decoy.destination_address, decoy.protocol)
            count = per_destination.get(quota_key, 0)
            if count >= self.config.phase2_paths_per_destination:
                continue
            destination = destinations_by_address.get(decoy.destination_address)
            if destination is None:
                continue
            vp = next(
                (vp for vp in eco.platform.vantage_points if vp.vp_id == decoy.vp_id),
                None,
            )
            if vp is None:
                continue
            info = campaign.path_info(
                vp, decoy.destination_address,
                destination_asn=eco.directory.asn_of(decoy.destination_address) or 0,
                destination_country=decoy.destination_country,
                service_name=decoy.destination_name,
            )
            tracer.schedule_traceroute(info, decoy.protocol, destination)
            scheduled.add(key)
            per_destination[quota_key] = count + 1

"""End-to-end experiment orchestration.

``Experiment(config).run()`` executes the whole paper pipeline:

1. build the simulated world (:mod:`repro.core.ecosystem`),
2. vet the VPN platform and run Phase I (:mod:`repro.core.campaign`),
3. correlate honeypot logs and classify unsolicited requests,
4. sample problematic paths and run Phase II tracerouting,
5. locate observers from minimal trigger TTLs and ICMP reporters.

With ``config.workers > 1`` the run is dispatched to the sharded
executor (:mod:`repro.core.shard`), which partitions the campaign across
worker processes and deterministically merges their outputs into the
same result the serial path produces.

The returned :class:`ExperimentResult` is the single input every analysis
and benchmark consumes.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.campaign import Campaign, PathInfo
from repro.core.config import ExperimentConfig
from repro.core.correlate import CorrelationResult, Correlator, DecoyLedger
from repro.core.ecosystem import Ecosystem, build_ecosystem
from repro.core.phase2 import HopByHopTracer, ObserverLocation
from repro.honeypot.logstore import LogStore
from repro.telemetry.export import RunTelemetry
from repro.telemetry.spans import SpanTracer, timings_from_spans
from repro.vpn.vetting import VettingReport


@dataclass
class ExperimentResult:
    """Everything one experiment run produced."""

    config: ExperimentConfig
    eco: Ecosystem
    campaign: Campaign
    phase1: CorrelationResult
    phase2: CorrelationResult
    locations: List[ObserverLocation]
    vetting: VettingReport
    timings: Dict[str, float] = field(default_factory=dict)
    """Wall-clock seconds per stage ("phase1", "phase2", "correlate") and
    the virtual campaign span ("virtual_span").  Derived from
    ``telemetry.spans`` — kept as a plain dict so analysis and bench
    consumers predating the telemetry subsystem keep working."""
    telemetry: Optional[RunTelemetry] = None
    """Stage spans always; merged counters/gauges/histograms when
    ``config.telemetry`` is on (see docs/OBSERVABILITY.md)."""
    analysis: Optional[object] = None
    """Merged :class:`~repro.analysis.streaming.AnalysisState` — the
    streaming mirror of every paper artifact, fed as the run progressed
    (see docs/STREAMING.md).  Persisted bundles export it so ``repro
    report`` can render without re-correlating."""

    @property
    def ledger(self) -> DecoyLedger:
        return self.campaign.ledger

    @property
    def log(self) -> LogStore:
        return self.eco.deployment.log

    def problematic_path_keys(self) -> List[Tuple[str, str, str]]:
        """Distinct (vp_id, destination address, decoy protocol) triples
        whose Phase I decoys triggered unsolicited requests."""
        seen = set()
        ordered = []
        for event in self.phase1.events:
            key = (event.decoy.vp_id, event.decoy.destination_address,
                   event.decoy.protocol)
            if key not in seen:
                seen.add(key)
                ordered.append(key)
        return ordered


@dataclass(frozen=True)
class Phase2PlanEntry:
    """One problematic path selected for Phase II tracerouting.

    Selection runs once over the merged Phase I correlation (quotas are
    global, so no shard could compute them alone); entries are then
    dispatched to whichever shard owns the (VP, destination) pair.
    """

    index: int
    vp_id: str
    vp_address: str
    destination_address: str
    destination_country: str
    destination_name: str
    protocol: str


def plan_phase2(eco: Ecosystem, phase1: CorrelationResult,
                config: ExperimentConfig) -> List[Phase2PlanEntry]:
    """Sample problematic paths per destination, in correlation order.

    Pure selection — no paths are materialized and no events queued — so
    the serial runner and the sharded executor share one plan and their
    Phase II probe sets match entry for entry.
    """
    known_destinations = {d.address for d in eco.dns_destinations}
    known_destinations.update(d.address for d in eco.web_destinations)
    known_vps = {vp.vp_id for vp in eco.platform.vantage_points}

    entries: List[Phase2PlanEntry] = []
    per_destination: Dict[Tuple[str, str], int] = {}
    selected = set()
    for event in phase1.events:
        decoy = event.decoy
        key = (decoy.vp_id, decoy.destination_address, decoy.protocol)
        if key in selected:
            continue
        quota_key = (decoy.destination_address, decoy.protocol)
        count = per_destination.get(quota_key, 0)
        if count >= config.phase2_paths_per_destination:
            continue
        if decoy.destination_address not in known_destinations:
            continue
        if decoy.vp_id not in known_vps:
            continue
        entries.append(Phase2PlanEntry(
            index=len(entries),
            vp_id=decoy.vp_id,
            vp_address=decoy.identity.vp_address,
            destination_address=decoy.destination_address,
            destination_country=decoy.destination_country,
            destination_name=decoy.destination_name,
            protocol=decoy.protocol,
        ))
        selected.add(key)
        per_destination[quota_key] = count + 1
    return entries


def schedule_phase2_entries(campaign: Campaign, tracer: HopByHopTracer,
                            entries: Iterable[Phase2PlanEntry]) -> int:
    """Queue traceroutes for the given plan entries; returns the count."""
    eco = campaign.eco
    destinations_by_address: Dict[str, object] = {
        destination.address: destination
        for destination in eco.dns_destinations
    }
    for destination in eco.web_destinations:
        destinations_by_address[destination.address] = destination
    vps_by_id = {vp.vp_id: vp for vp in eco.platform.vantage_points}

    scheduled = 0
    for entry in entries:
        destination = destinations_by_address[entry.destination_address]
        vp = vps_by_id[entry.vp_id]
        info = campaign.path_info(
            vp, entry.destination_address,
            destination_asn=eco.directory.asn_of(entry.destination_address) or 0,
            destination_country=entry.destination_country,
            service_name=entry.destination_name,
        )
        tracer.schedule_traceroute(info, entry.protocol, destination,
                                   plan_index=entry.index)
        scheduled += 1
    return scheduled


class Experiment:
    """Orchestrates one full run."""

    def __init__(self, config: Optional[ExperimentConfig] = None):
        self.config = config if config is not None else ExperimentConfig()

    def run(self, *, checkpoint_dir=None,
            supervision=None) -> ExperimentResult:
        """Execute the experiment.

        ``checkpoint_dir`` and ``supervision`` configure the sharded
        executor's crash tolerance (see docs/ROBUSTNESS.md); both require
        ``config.workers > 1``.
        """
        if self.config.workers > 1:
            from repro.core.shard import run_sharded
            return run_sharded(self.config, checkpoint_dir=checkpoint_dir,
                               supervision=supervision)
        if checkpoint_dir is not None or supervision is not None:
            raise ValueError(
                "checkpointing and supervision require workers > 1"
            )
        return self._run_serial()

    def _run_serial(self) -> ExperimentResult:
        import time as _time

        started = _time.perf_counter()
        spans = SpanTracer()
        with spans.span("build"):
            eco = build_ecosystem(self.config)
        spans.virtual_now = eco.sim.now

        campaign = Campaign(eco)
        with campaign:
            with spans.span("phase1"):
                campaign.run_phase1()

            correlator = Correlator(campaign.ledger, zone=self.config.zone)
            phase1 = correlator.correlate(eco.deployment.log, phase=1)

            with spans.span("phase2"):
                tracer = HopByHopTracer(campaign)
                entries = plan_phase2(eco, phase1, self.config)
                schedule_phase2_entries(campaign, tracer, entries)
                eco.sim.run(
                    until=eco.sim.now() + self.config.phase2_observation_window)

            # Exhibitors schedule unsolicited requests days out, so Phase I
            # decoys keep drawing traffic during the Phase II window; the
            # final correlation pass covers the complete log, as the
            # paper's offline analysis does.
            with spans.span("correlate"):
                phase1 = correlator.correlate(eco.deployment.log, phase=1)
                phase2 = correlator.correlate(eco.deployment.log, phase=2)
                locations = tracer.locate(phase2)

            # Feed the streaming analysis state (decoys were observed at
            # send time); it becomes the O(merge) report input.
            campaign.analysis.observe_events(phase1.events)
            campaign.analysis.observe_locations(locations)
            campaign.analysis.set_log_entries(len(eco.deployment.log))

        timings = timings_from_spans(spans.spans)
        timings["total"] = _time.perf_counter() - started
        timings["virtual_span"] = eco.sim.now()
        return ExperimentResult(
            config=self.config,
            eco=eco,
            campaign=campaign,
            phase1=phase1,
            phase2=phase2,
            locations=locations,
            vetting=campaign.vetting,
            analysis=campaign.analysis,
            timings=timings,
            telemetry=RunTelemetry(
                metrics=eco.telemetry,
                spans=spans.spans,
                enabled=self.config.telemetry,
                meta={"seed": self.config.seed, "workers": 1,
                      "virtual_span": eco.sim.now()},
            ),
        )

"""Phase-boundary checkpoints for the sharded executor.

The supervisor (:mod:`repro.core.shard`) flushes each shard's payload to
disk the moment it arrives — Phase I payloads after the first round of
the worker protocol, final payloads after the second — so a run killed at
any point can resume with ``run --resume DIR``: shards whose final
payload is on disk are never re-simulated, and shards that only reached
Phase I skip nothing but re-derive their (deterministic) simulator state
by replay.

Every write is atomic (temp file + :func:`os.replace` in the same
directory), so a crash mid-flush leaves either the previous checkpoint or
none — never a torn file.  Shard payloads and the Phase II plan are
stored as the same wire-format blobs that crossed the worker pipe
(:mod:`repro.core.wire`) — the supervisor writes the received bytes
verbatim, so checkpointing costs one file write, not a re-serialization,
and the blob checksum doubles as on-disk corruption detection.  Final
payloads are deltas: decoding one requires the shard's Phase I payload,
which resume loads first anyway.  ``meta.json`` carries the
human-readable run identity (seed, shard count) used to reject resuming
with a mismatched config.
"""

import json
import os
import pickle
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.wire import (
    WireError,
    decode_final_payload,
    decode_phase1_payload,
    decode_plan_slices,
    encode_plan_slices,
)

_META = "meta.json"
_CONFIG = "config.pkl"
_PLAN = "phase2_plan.bin"
_ANALYSIS = "analysis.json"

CHECKPOINT_FORMAT = 4
"""Format 4 adds a ``kind`` discriminator to ``meta.json`` (``"run"``
for phase-boundary shard checkpoints, ``"serve"`` for the continuous
watermark checkpoints of :mod:`repro.serve`) so the two layouts cannot
be resumed into each other.  Format 3 stored the same run payloads but
no kind; as with every bump, older directories are rejected up front
instead of failing on a missing file later."""

KIND_RUN = "run"
KIND_SERVE = "serve"


class CheckpointError(RuntimeError):
    """A checkpoint directory is unusable for the requested operation."""


class CheckpointStore:
    """Atomic wire-blob/JSON persistence under one checkpoint directory."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- low-level atomic writes ------------------------------------------

    def _write_bytes(self, name: str, payload: bytes) -> None:
        target = self.directory / name
        temp = self.directory / (name + ".tmp")
        temp.write_bytes(payload)
        os.replace(temp, target)

    def _read_bytes(self, name: str) -> bytes:
        return (self.directory / name).read_bytes()

    def _write_pickle(self, name: str, value) -> None:
        self._write_bytes(name, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def _read_pickle(self, name: str):
        with open(self.directory / name, "rb") as handle:
            return pickle.load(handle)

    # -- run identity ------------------------------------------------------

    KIND = KIND_RUN

    def save_run(self, config, shard_count: int) -> None:
        self._write_pickle(_CONFIG, config)
        self._write_bytes(_META, json.dumps({
            "seed": config.seed,
            "shard_count": shard_count,
            "format": CHECKPOINT_FORMAT,
            "kind": self.KIND,
        }, indent=2).encode())

    def load_meta(self) -> Dict:
        path = self.directory / _META
        if not path.exists():
            raise CheckpointError(f"{self.directory} has no {_META}; "
                                  "not a checkpoint directory")
        meta = json.loads(path.read_text())
        if meta.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{self.directory} is checkpoint format "
                f"{meta.get('format')!r}; this build reads format "
                f"{CHECKPOINT_FORMAT} — re-run the campaign instead of "
                "resuming"
            )
        if meta.get("kind", KIND_RUN) != self.KIND:
            raise CheckpointError(
                f"{self.directory} holds {meta.get('kind')!r} checkpoints; "
                f"this store reads {self.KIND!r} checkpoints"
            )
        return meta

    def load_config(self):
        try:
            return self._read_pickle(_CONFIG)
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"{self.directory} has no {_CONFIG}"
            ) from exc

    # -- phase payloads ----------------------------------------------------

    @staticmethod
    def _phase1_name(shard_index: int) -> str:
        return f"shard-{shard_index:02d}.phase1.bin"

    @staticmethod
    def _final_name(shard_index: int) -> str:
        return f"shard-{shard_index:02d}.final.bin"

    def save_phase1_blob(self, shard_index: int, blob: bytes) -> None:
        self._write_bytes(self._phase1_name(shard_index), blob)

    def load_phase1(self, shard_index: int):
        name = self._phase1_name(shard_index)
        try:
            return decode_phase1_payload(self._read_bytes(name))
        except WireError as exc:
            raise CheckpointError(f"{self.directory / name}: {exc}") from exc

    def has_phase1(self, shard_index: int) -> bool:
        return (self.directory / self._phase1_name(shard_index)).exists()

    def save_phase2_plan(self, slices: List[list]) -> None:
        self._write_bytes(_PLAN, encode_plan_slices(slices))

    def load_phase2_plan(self) -> Optional[List[list]]:
        try:
            blob = self._read_bytes(_PLAN)
        except FileNotFoundError:
            return None
        try:
            return decode_plan_slices(blob)
        except WireError as exc:
            raise CheckpointError(f"{self.directory / _PLAN}: {exc}") from exc

    def save_analysis(self, snapshot: Dict) -> None:
        """Persist the merged interim analysis state (canonical JSON).

        JSON, not a wire blob: the snapshot is already canonical-JSON-able,
        and a text artifact doubles as a debugging/diffing aid."""
        self._write_bytes(_ANALYSIS,
                          json.dumps(snapshot, sort_keys=True).encode())

    def load_analysis(self) -> Optional[Dict]:
        try:
            return json.loads((self.directory / _ANALYSIS).read_text())
        except FileNotFoundError:
            return None

    def save_final_blob(self, shard_index: int, blob: bytes) -> None:
        self._write_bytes(self._final_name(shard_index), blob)

    def load_final(self, shard_index: int, phase1):
        """Decode a final payload against its (already loaded) Phase I
        payload — the delta base every final blob is encoded against."""
        name = self._final_name(shard_index)
        try:
            return decode_final_payload(self._read_bytes(name), phase1)
        except WireError as exc:
            raise CheckpointError(f"{self.directory / name}: {exc}") from exc

    def has_final(self, shard_index: int) -> bool:
        return (self.directory / self._final_name(shard_index)).exists()

    def completed_shards(self, shard_count: int) -> List[int]:
        """Shards whose final payload is already flushed."""
        return [index for index in range(shard_count) if self.has_final(index)]


class ServeCheckpointStore(CheckpointStore):
    """Continuous watermark checkpoints for the always-on service.

    Layout under one directory (all writes atomic, same discipline as
    the run store):

    * ``meta.json`` — format + ``kind: "serve"``;
    * ``campaign-<id>.context.bin`` — the campaign's registration
      :class:`~repro.core.wire.FeedBatch` blob, stored **verbatim** as
      received (written once, at registration);
    * ``campaign-<id>.state.bin`` — the latest
      :class:`~repro.core.wire.ServeCampaignState` blob, rewritten at
      every record-count/wall-clock watermark and on graceful shutdown.

    A kill between watermarks loses at most the un-flushed tail; the
    feed protocol's idempotent sequence numbers let a feeder resend from
    its last acknowledged batch (see docs/SERVICE.md).
    """

    KIND = KIND_SERVE

    _CONTEXT_SUFFIX = ".context.bin"
    _STATE_SUFFIX = ".state.bin"

    def save_meta(self) -> None:
        self._write_bytes(_META, json.dumps({
            "format": CHECKPOINT_FORMAT,
            "kind": self.KIND,
        }, indent=2).encode())

    @staticmethod
    def _campaign_file(campaign_id: str, suffix: str) -> str:
        return f"campaign-{campaign_id}{suffix}"

    def save_context_blob(self, campaign_id: str, blob: bytes) -> None:
        self._write_bytes(self._campaign_file(campaign_id,
                                              self._CONTEXT_SUFFIX), blob)

    def load_context(self, campaign_id: str):
        from repro.core.wire import WireError, decode_feed_batch

        name = self._campaign_file(campaign_id, self._CONTEXT_SUFFIX)
        try:
            return decode_feed_batch(self._read_bytes(name))
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"{self.directory} has no registration blob for campaign "
                f"{campaign_id!r}"
            ) from exc
        except WireError as exc:
            raise CheckpointError(f"{self.directory / name}: {exc}") from exc

    def save_state_blob(self, campaign_id: str, blob: bytes) -> None:
        self._write_bytes(self._campaign_file(campaign_id,
                                              self._STATE_SUFFIX), blob)

    def load_state(self, campaign_id: str):
        from repro.core.wire import WireError, decode_serve_state

        name = self._campaign_file(campaign_id, self._STATE_SUFFIX)
        try:
            return decode_serve_state(self._read_bytes(name))
        except FileNotFoundError:
            return None
        except WireError as exc:
            raise CheckpointError(f"{self.directory / name}: {exc}") from exc

    def campaign_ids(self) -> List[str]:
        """Registered campaigns, by context blob, sorted for determinism."""
        prefix, suffix = "campaign-", self._CONTEXT_SUFFIX
        return sorted(
            path.name[len(prefix):-len(suffix)]
            for path in self.directory.glob(f"{prefix}*{suffix}")
        )

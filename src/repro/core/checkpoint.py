"""Phase-boundary checkpoints for the sharded executor.

The supervisor (:mod:`repro.core.shard`) flushes each shard's payload to
disk the moment it arrives — Phase I payloads after the first round of
the worker protocol, final payloads after the second — so a run killed at
any point can resume with ``run --resume DIR``: shards whose final
payload is on disk are never re-simulated, and shards that only reached
Phase I skip nothing but re-derive their (deterministic) simulator state
by replay.

Every write is atomic (temp file + :func:`os.replace` in the same
directory), so a crash mid-flush leaves either the previous checkpoint or
none — never a torn file.  Payloads are pickled; ``meta.json`` carries
the human-readable run identity (seed, shard count) used to reject
resuming with a mismatched config.
"""

import json
import os
import pickle
from pathlib import Path
from typing import Dict, List, Optional

_META = "meta.json"
_CONFIG = "config.pkl"
_PLAN = "phase2_plan.pkl"
_ANALYSIS = "analysis.json"

CHECKPOINT_FORMAT = 2
"""Format 2 payloads carry per-shard correlation and streaming-analysis
state (``ShardPhase1Payload.correlation`` / ``.analysis``); format-1
directories would unpickle into objects missing those fields, so resume
rejects them up front instead of failing with an AttributeError later."""


class CheckpointError(RuntimeError):
    """A checkpoint directory is unusable for the requested operation."""


class CheckpointStore:
    """Atomic pickle/JSON persistence under one checkpoint directory."""

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- low-level atomic writes ------------------------------------------

    def _write_bytes(self, name: str, payload: bytes) -> None:
        target = self.directory / name
        temp = self.directory / (name + ".tmp")
        temp.write_bytes(payload)
        os.replace(temp, target)

    def _write_pickle(self, name: str, value) -> None:
        self._write_bytes(name, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def _read_pickle(self, name: str):
        with open(self.directory / name, "rb") as handle:
            return pickle.load(handle)

    # -- run identity ------------------------------------------------------

    def save_run(self, config, shard_count: int) -> None:
        self._write_pickle(_CONFIG, config)
        self._write_bytes(_META, json.dumps({
            "seed": config.seed,
            "shard_count": shard_count,
            "format": CHECKPOINT_FORMAT,
        }, indent=2).encode())

    def load_meta(self) -> Dict:
        path = self.directory / _META
        if not path.exists():
            raise CheckpointError(f"{self.directory} has no {_META}; "
                                  "not a checkpoint directory")
        meta = json.loads(path.read_text())
        if meta.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{self.directory} is checkpoint format "
                f"{meta.get('format')!r}; this build reads format "
                f"{CHECKPOINT_FORMAT} — re-run the campaign instead of "
                "resuming"
            )
        return meta

    def load_config(self):
        try:
            return self._read_pickle(_CONFIG)
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"{self.directory} has no {_CONFIG}"
            ) from exc

    # -- phase payloads ----------------------------------------------------

    @staticmethod
    def _phase1_name(shard_index: int) -> str:
        return f"shard-{shard_index:02d}.phase1.pkl"

    @staticmethod
    def _final_name(shard_index: int) -> str:
        return f"shard-{shard_index:02d}.final.pkl"

    def save_phase1(self, payload) -> None:
        self._write_pickle(self._phase1_name(payload.shard_index), payload)

    def load_phase1(self, shard_index: int):
        return self._read_pickle(self._phase1_name(shard_index))

    def has_phase1(self, shard_index: int) -> bool:
        return (self.directory / self._phase1_name(shard_index)).exists()

    def save_phase2_plan(self, slices: List[list]) -> None:
        self._write_pickle(_PLAN, slices)

    def load_phase2_plan(self) -> Optional[List[list]]:
        try:
            return self._read_pickle(_PLAN)
        except FileNotFoundError:
            return None

    def save_analysis(self, snapshot: Dict) -> None:
        """Persist the merged interim analysis state (canonical JSON).

        JSON, not pickle: the snapshot is already canonical-JSON-able, and
        a text artifact doubles as a debugging/diffing aid."""
        self._write_bytes(_ANALYSIS,
                          json.dumps(snapshot, sort_keys=True).encode())

    def load_analysis(self) -> Optional[Dict]:
        try:
            return json.loads((self.directory / _ANALYSIS).read_text())
        except FileNotFoundError:
            return None

    def save_final(self, payload) -> None:
        self._write_pickle(self._final_name(payload.shard_index), payload)

    def load_final(self, shard_index: int):
        return self._read_pickle(self._final_name(shard_index))

    def has_final(self, shard_index: int) -> bool:
        return (self.directory / self._final_name(shard_index)).exists()

    def completed_shards(self, shard_count: int) -> List[int]:
        """Shards whose final payload is already flushed."""
        return [index for index in range(shard_count) if self.has_final(index)]

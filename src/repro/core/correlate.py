"""Correlation of honeypot logs with decoys; unsolicited classification.

Section 3 defines an incoming request bearing decoy data as unsolicited
when:

 (i)  request and decoy protocols differ (that data was never sent over
      the request protocol); or
 (ii) the request protocol is HTTP or TLS (no HTTP/TLS decoys are ever
      sent *to the honeypots*); or
 (iii) the request protocol is DNS and the unique query name already
      appeared in an earlier DNS query — the initial decoy's recursive
      lookup.

The correlator decodes each logged domain's identifier, joins it to the
decoy ledger, applies the rules in arrival order, and emits
:class:`ShadowingEvent` records that every analysis consumes.
"""

import weakref
from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core import columnar
from repro.core.identifier import DecoyIdentity, IdentifierCodec, IdentifierError
from repro.honeypot.logstore import LoggedRequest, LogStore

_DECOY_LABELS = {"dns": "DNS", "http": "HTTP", "tls": "TLS"}
_REQUEST_LABELS = {"dns": "DNS", "http": "HTTP", "https": "HTTPS"}


@dataclass(frozen=True)
class DecoyRecord:
    """Ledger entry: one decoy as sent, with its path context."""

    identity: DecoyIdentity
    domain: str
    protocol: str
    vp_id: str
    vp_country: str
    vp_province: Optional[str]
    destination_address: str
    destination_name: str
    destination_kind: str
    """"dns" for resolver/root/TLD targets, "web" for Tranco-pool targets."""
    destination_country: str
    instance_country: str
    """Country of the anycast instance this decoy's path terminates in."""
    path_length: int
    sent_at: float
    phase: int
    delivered: bool = True
    round_index: int = 0
    """Which Phase I round-robin pass emitted this decoy (0-based)."""
    mitigation: str = "none"
    """Encryption mitigation the decoy adopted on the wire: ``"none"``,
    ``"ech"``, or ``"doh"``.  Excluded from result digests (the digest
    hashes ecosystem-observable columns only), but drives the
    mitigation-vs-observer matrix and event provenance."""


class DecoyLedger:
    """Every decoy sent during an experiment, indexed by domain.

    Storage is columnar: one ``array`` per :class:`DecoyRecord` field,
    with repeated strings (addresses, countries, protocol labels, VP and
    destination names) routed through a shared
    :class:`~repro.core.columnar.StringTable`.  A paper-scale campaign
    registers millions of decoys; columns keep that at tens of bytes per
    row instead of one 17-field dataclass instance each.  Rows
    materialize back into records through a weak-value cache, so any
    consumer holding a record (a correlation event, a payload snapshot)
    keeps getting the identical object from every lookup.

    The ledger also stores each registered decoy's deterministic
    merge-order key — ``(sent_at, phase, plan major, plan minor)`` —
    as four more columns (:meth:`set_key`/:meth:`key_of`): sorting any
    union of shard ledgers by this key reproduces the serial
    registration order.
    """

    def __init__(self):
        self._table = columnar.StringTable()
        self._row_by_domain: Dict[str, int] = {}
        self._domains: List[str] = []
        self._id_sent_at = array("q")
        self._id_ttls = array("i")
        self._id_sequences = array("i")
        self._id_vps = array("i")
        self._id_dsts = array("i")
        self._protocols = array("i")
        self._vp_ids = array("i")
        self._vp_countries = array("i")
        self._vp_provinces = array("i")
        self._dst_addresses = array("i")
        self._dst_names = array("i")
        self._dst_kinds = array("i")
        self._dst_countries = array("i")
        self._instance_countries = array("i")
        self._path_lengths = array("i")
        self._sent_ats = array("d")
        self._phases = array("b")
        self._delivered = array("b")
        self._round_indexes = array("i")
        self._mitigations = array("i")
        self._key_times = array("d")
        self._key_phases = array("b")
        """-1 marks "no merge key set" (e.g. ledgers rebuilt by the serve
        ingest path, which never merges shards)."""
        self._key_majors = array("q")
        self._key_minors = array("q")
        self._cache: "weakref.WeakValueDictionary[int, DecoyRecord]" = \
            weakref.WeakValueDictionary()

    def register(self, record: DecoyRecord) -> None:
        if record.domain in self._row_by_domain:
            raise ValueError(f"duplicate decoy domain {record.domain!r}")
        row = len(self._domains)
        table = self._table
        self._row_by_domain[record.domain] = row
        self._domains.append(record.domain)
        identity = record.identity
        self._id_sent_at.append(identity.sent_at)
        self._id_ttls.append(identity.ttl)
        self._id_sequences.append(identity.sequence)
        self._id_vps.append(table.intern(identity.vp_address))
        self._id_dsts.append(table.intern(identity.dst_address))
        self._protocols.append(table.intern(record.protocol))
        self._vp_ids.append(table.intern(record.vp_id))
        self._vp_countries.append(table.intern(record.vp_country))
        self._vp_provinces.append(table.intern_opt(record.vp_province))
        self._dst_addresses.append(table.intern(record.destination_address))
        self._dst_names.append(table.intern(record.destination_name))
        self._dst_kinds.append(table.intern(record.destination_kind))
        self._dst_countries.append(table.intern(record.destination_country))
        self._instance_countries.append(table.intern(record.instance_country))
        self._path_lengths.append(record.path_length)
        self._sent_ats.append(record.sent_at)
        self._phases.append(record.phase)
        self._delivered.append(1 if record.delivered else 0)
        self._round_indexes.append(record.round_index)
        self._mitigations.append(table.intern(record.mitigation))
        self._key_times.append(0.0)
        self._key_phases.append(-1)
        self._key_majors.append(0)
        self._key_minors.append(0)
        self._cache[row] = record

    def set_key(self, domain: str, key: Tuple[float, int, int, int]) -> None:
        """Attach the deterministic merge-order key of one registered decoy."""
        row = self._row_by_domain[domain]
        self._key_times[row] = key[0]
        self._key_phases[row] = key[1]
        self._key_majors[row] = key[2]
        self._key_minors[row] = key[3]

    def key_of(self, domain: str) -> Optional[Tuple[float, int, int, int]]:
        """The merge-order key of ``domain``, or None if never set."""
        row = self._row_by_domain.get(domain)
        if row is None or self._key_phases[row] < 0:
            return None
        return (self._key_times[row], self._key_phases[row],
                self._key_majors[row], self._key_minors[row])

    def _record(self, row: int) -> DecoyRecord:
        """Materialize row ``row`` (same object while any ref is live)."""
        record = self._cache.get(row)
        if record is not None:
            return record
        table = self._table
        record = DecoyRecord(
            identity=DecoyIdentity(
                sent_at=self._id_sent_at[row],
                vp_address=table.value(self._id_vps[row]),
                dst_address=table.value(self._id_dsts[row]),
                ttl=self._id_ttls[row],
                sequence=self._id_sequences[row],
            ),
            domain=self._domains[row],
            protocol=table.value(self._protocols[row]),
            vp_id=table.value(self._vp_ids[row]),
            vp_country=table.value(self._vp_countries[row]),
            vp_province=table.value_opt(self._vp_provinces[row]),
            destination_address=table.value(self._dst_addresses[row]),
            destination_name=table.value(self._dst_names[row]),
            destination_kind=table.value(self._dst_kinds[row]),
            destination_country=table.value(self._dst_countries[row]),
            instance_country=table.value(self._instance_countries[row]),
            path_length=self._path_lengths[row],
            sent_at=self._sent_ats[row],
            phase=self._phases[row],
            delivered=bool(self._delivered[row]),
            round_index=self._round_indexes[row],
            mitigation=table.value(self._mitigations[row]),
        )
        self._cache[row] = record
        return record

    def lookup(self, domain: str) -> Optional[DecoyRecord]:
        row = self._row_by_domain.get(domain)
        if row is None:
            return None
        return self._record(row)

    def records(self, phase: Optional[int] = None) -> List[DecoyRecord]:
        if phase is None:
            return [self._record(row) for row in range(len(self._domains))]
        return [self._record(row) for row in range(len(self._domains))
                if self._phases[row] == phase]

    def records_from(self, start: int) -> Iterator[DecoyRecord]:
        """Records from registration position ``start`` onward.

        The delta-snapshot path: a shard shipping only what it appended
        since its last snapshot walks the tail without materializing the
        full record list (registration order is insertion order)."""
        return (self._record(row) for row in range(start, len(self._domains)))

    def __len__(self) -> int:
        return len(self._domains)


@dataclass(frozen=True)
class ShadowingEvent:
    """One unsolicited request correlated back to its decoy."""

    decoy: DecoyRecord
    request: LoggedRequest
    combo: str
    """Decoy-Request protocol label, e.g. "DNS-HTTP"."""

    @property
    def delta(self) -> float:
        """Seconds between decoy emission and the unsolicited request."""
        return self.request.time - self.decoy.sent_at

    @property
    def origin_address(self) -> str:
        return self.request.src_address

    @property
    def provenance(self) -> str:
        """How the decoy's name could have been collected on the wire.

        ``"plaintext-read"`` for unencrypted decoys (QNAME, Host, or SNI
        was readable by any on-path device); ``"metadata-inferred"`` for
        ECH/DoH decoys, where no mid-path observer ever saw the name —
        any wire-side collection had to come from ciphertext metadata or
        from the terminating endpoint."""
        return ("plaintext-read" if self.decoy.mitigation == "none"
                else "metadata-inferred")


@dataclass
class CorrelationResult:
    """Everything a correlation pass produces."""

    events: List[ShadowingEvent] = field(default_factory=list)
    initial_arrivals: Dict[str, LoggedRequest] = field(default_factory=dict)
    """Per decoy domain, the first (solicited) DNS arrival, if any."""
    unknown_domains: List[str] = field(default_factory=list)
    """Logged domains whose identifier failed to decode (noise)."""

    def events_for(self, domain: str) -> List[ShadowingEvent]:
        return [event for event in self.events if event.decoy.domain == domain]

    def shadowed_domains(self) -> List[str]:
        seen = []
        observed = set()
        for event in self.events:
            if event.decoy.domain not in observed:
                observed.add(event.decoy.domain)
                seen.append(event.decoy.domain)
        return seen


class Correlator:
    """Joins honeypot logs to the decoy ledger and classifies arrivals."""

    def __init__(self, ledger: DecoyLedger, zone: str,
                 codec: Optional[IdentifierCodec] = None):
        self._ledger = ledger
        self._zone = zone
        self._codec = codec if codec is not None else IdentifierCodec()

    def correlate(self, log: LogStore,
                  phase: Optional[int] = None) -> CorrelationResult:
        """Classify every logged request; optionally restrict to decoys of
        one experiment phase."""
        result = CorrelationResult()
        for domain in log.domains():
            aliased = False
            record = self._ledger.lookup(domain)
            if record is None:
                record = self._recover_alias(domain)
                if record is None:
                    result.unknown_domains.append(domain)
                    continue
                aliased = True
            if phase is not None and record.phase != phase:
                continue
            if not aliased:
                try:
                    self._codec.decode_domain(domain, self._zone)
                except IdentifierError:
                    result.unknown_domains.append(domain)
                    continue
            dns_arrivals = 0
            for entry in log.for_domain(domain):
                unsolicited = True
                if (not aliased and entry.protocol == "dns"
                        and record.protocol == "dns"):
                    dns_arrivals += 1
                    if dns_arrivals == 1:
                        # Rule (iii): the first DNS appearance of a DNS
                        # decoy's name is the decoy itself recursing.
                        # Aliased names never qualify: the decoy's own
                        # recursion carries its exact domain, so anything
                        # arriving under a mangled name is third-party.
                        result.initial_arrivals[domain] = entry
                        unsolicited = False
                if unsolicited:
                    result.events.append(
                        ShadowingEvent(
                            decoy=record,
                            request=entry,
                            combo=self.combo_label(record.protocol, entry.protocol),
                        )
                    )
        return result

    def _recover_alias(self, domain: str) -> Optional[DecoyRecord]:
        """Map a mangled logged name back to its decoy, if possible.

        Shadowers sometimes prepend their own labels before replaying a
        name ("probe.<identifier>.<zone>"), so the raw domain misses the
        ledger.  The embedded identifier still survives: decode it from
        whichever label carries it, re-encode the canonical domain, and
        look that up.  Anything that still fails to decode is genuine
        noise and stays in ``unknown_domains``.
        """
        try:
            identity = self._codec.decode_domain(domain, self._zone)
        except IdentifierError:
            return None
        canonical = f"{self._codec.encode(identity)}.{self._zone}"
        if canonical == domain:
            return None
        return self._ledger.lookup(canonical)

    @staticmethod
    def combo_label(decoy_protocol: str, request_protocol: str) -> str:
        try:
            return f"{_DECOY_LABELS[decoy_protocol]}-{_REQUEST_LABELS[request_protocol]}"
        except KeyError as exc:
            raise ValueError(
                f"unknown protocol pair ({decoy_protocol!r}, {request_protocol!r})"
            ) from exc


class IncrementalCorrelator:
    """Record-at-a-time correlation for the always-on service.

    :class:`Correlator` re-scans the whole log per call; a live daemon
    cannot afford that.  This class applies the same Section 3 rules to
    one :class:`~repro.honeypot.logstore.LoggedRequest` at a time —
    classification state is per *logged domain* (its ledger resolution
    and whether its solicited initial DNS arrival was consumed), so each
    ingest is O(1) lookups and the full log is never revisited.

    Exactness: for any log fed entry by entry, the multiset of emitted
    events (and the initial-arrival / unknown-domain partitions) equals
    ``Correlator.correlate(log)`` — the batch pass groups its output by
    domain, but classifies each entry independently of every entry that
    *follows* it, so arrival order is all the state needed.  Pinned by
    ``tests/test_serve.py``.

    With ``retain_events=True`` the correlator also keeps per-domain
    event lists and first-appearance keys, and :meth:`result` replays
    them through :class:`CorrelationMerger` to reproduce the batch
    event *order* bit for bit.  ``retain_events=False`` (the service
    default) keeps only the O(domains) classification state.

    :meth:`state_snapshot` / :meth:`from_state_snapshot` round-trip that
    classification state for daemon restarts; retained events are
    deliberately not serialized (the analysis accumulators, not the
    event list, are the durable product — see docs/SERVICE.md).
    """

    def __init__(self, ledger: DecoyLedger, zone: str,
                 codec: Optional[IdentifierCodec] = None,
                 retain_events: bool = False):
        self._ledger = ledger
        self._zone = zone
        self._codec = codec if codec is not None else IdentifierCodec()
        self._batch = Correlator(ledger, zone, codec=self._codec)
        self._resolutions: Dict[str, Optional[Tuple[str, bool]]] = {}
        """Logged domain -> (canonical ledger domain, aliased) or None
        for noise.  The decode attempt runs once per distinct domain."""
        self._initial_seen: Set[str] = set()
        """Domains whose solicited first DNS arrival was consumed."""
        self.event_count = 0
        self.unknown_count = 0
        """Distinct undecodable domains seen (matches the batch pass's
        ``unknown_domains`` length for a phase=None correlation)."""
        self.initial_count = 0
        self._retain = retain_events
        self._shard = ShardCorrelation(
            firsts=[], events={}, initial_arrivals={}, unknown_domains=[]
        ) if retain_events else None
        self._log_index = 0

    def _resolve(self, domain: str) -> Optional[Tuple[DecoyRecord, bool]]:
        cached = self._resolutions.get(domain, _UNRESOLVED)
        if cached is not _UNRESOLVED:
            if cached is None:
                return None
            canonical, aliased = cached
            record = self._ledger.lookup(canonical)
            return (record, aliased) if record is not None else None
        record = self._ledger.lookup(domain)
        aliased = False
        if record is None:
            record = self._batch._recover_alias(domain)
            aliased = record is not None
        if record is not None and not aliased:
            try:
                self._codec.decode_domain(domain, self._zone)
            except IdentifierError:
                record = None
        if record is None:
            self._resolutions[domain] = None
            self.unknown_count += 1
            if self._shard is not None:
                self._shard.unknown_domains.append(domain)
            return None
        self._resolutions[domain] = (record.domain, aliased)
        return record, aliased

    def ingest(self, entry: LoggedRequest) -> Optional[ShadowingEvent]:
        """Classify one appended log entry.

        Returns the :class:`ShadowingEvent` when the entry is
        unsolicited, or ``None`` when it is the decoy's own solicited
        initial arrival (rule iii) or undecodable noise.
        """
        index = self._log_index
        self._log_index += 1
        domain = entry.domain
        if self._shard is not None and domain not in self._resolutions:
            self._shard.firsts.append((entry.time, index, domain))
        resolved = self._resolve(domain)
        if resolved is None:
            return None
        record, aliased = resolved
        if (not aliased and entry.protocol == "dns"
                and record.protocol == "dns"
                and domain not in self._initial_seen):
            self._initial_seen.add(domain)
            self.initial_count += 1
            if self._shard is not None:
                self._shard.initial_arrivals[domain] = entry
            return None
        event = ShadowingEvent(
            decoy=record,
            request=entry,
            combo=Correlator.combo_label(record.protocol, entry.protocol),
        )
        self.event_count += 1
        if self._shard is not None:
            self._shard.events.setdefault(record.domain, []).append(event)
        return event

    def result(self) -> CorrelationResult:
        """The batch-identical correlation of everything ingested so far
        (requires ``retain_events=True``): the retained single-"shard"
        state replayed through :class:`CorrelationMerger`, which imposes
        the batch first-appearance domain order."""
        if self._shard is None:
            raise RuntimeError(
                "this IncrementalCorrelator was built with "
                "retain_events=False and keeps no event lists; only "
                "counts and classification state are available"
            )
        return CorrelationMerger().add(self._shard, 0).result()

    # -- restart support ---------------------------------------------------

    def state_snapshot(self) -> dict:
        """Canonical JSON-able classification state (no events)."""
        return {
            "domains": sorted(
                [domain, None if value is None else value[0],
                 bool(value[1]) if value is not None else False,
                 domain in self._initial_seen]
                for domain, value in self._resolutions.items()
            ),
            "log_index": self._log_index,
            "events": self.event_count,
            "unknown": self.unknown_count,
            "initial": self.initial_count,
        }

    @classmethod
    def from_state_snapshot(cls, data: dict, ledger: DecoyLedger, zone: str,
                            codec: Optional[IdentifierCodec] = None,
                            ) -> "IncrementalCorrelator":
        """Rebuild classification state against a restored ledger.

        The restored instance continues classifying new entries exactly
        as the uninterrupted one would; it never retains events (the
        pre-restart event lists were not serialized)."""
        correlator = cls(ledger, zone, codec=codec, retain_events=False)
        for domain, canonical, aliased, initial_seen in data["domains"]:
            if canonical is None:
                correlator._resolutions[domain] = None
            else:
                if ledger.lookup(canonical) is None:
                    raise ValueError(
                        f"correlator state references decoy domain "
                        f"{canonical!r} absent from the restored ledger"
                    )
                correlator._resolutions[domain] = (canonical, bool(aliased))
            if initial_seen:
                correlator._initial_seen.add(domain)
        correlator._log_index = data["log_index"]
        correlator.event_count = data["events"]
        correlator.unknown_count = data["unknown"]
        correlator.initial_count = data["initial"]
        return correlator


_UNRESOLVED = object()
"""Sentinel distinguishing "never looked up" from "resolved to noise"."""


@dataclass
class ShardCorrelation:
    """One shard's correlation output plus the ordering metadata the
    supervisor needs to reconstruct the *merged-log* correlation without
    ever materializing the merged log.

    Exactness rests on shard locality: every log entry bearing a decoy's
    data arrives at an observer in the shard that owns the decoy's
    (VP, destination) pair — aliased names decode back to in-shard
    canonical decoys — so one shard holds *all* of a domain's events and
    the per-domain event order is the shard's own arrival order.
    """

    firsts: List[Tuple[float, int, str]]
    """(first time, first in-shard log index, domain) for every domain in
    this shard's log; with the shard position this keys the merged
    first-appearance order (the order ``LogStore.merged().domains()``
    would yield)."""
    events: Dict[str, List[ShadowingEvent]]
    """Per-domain events, in in-shard arrival order."""
    initial_arrivals: Dict[str, LoggedRequest]
    unknown_domains: List[str]


def shard_correlation(result: CorrelationResult, log: LogStore) -> ShardCorrelation:
    """Package one shard's :class:`CorrelationResult` for exact merging."""
    firsts: List[Tuple[float, int, str]] = []
    for domain in log.domains():
        occurrence = log.first_occurrence(domain)
        if occurrence is None:  # pragma: no cover - domains() implies entries
            continue
        firsts.append((occurrence[0], occurrence[1], domain))
    events: Dict[str, List[ShadowingEvent]] = {}
    for event in result.events:
        events.setdefault(event.decoy.domain, []).append(event)
    return ShardCorrelation(
        firsts=firsts,
        events=events,
        initial_arrivals=dict(result.initial_arrivals),
        unknown_domains=list(result.unknown_domains),
    )


class CorrelationMerger:
    """Incremental, order-independent accumulator behind
    :func:`merge_shard_correlations`.

    The batch pass iterates merged-log domains in first-appearance order
    and emits each domain's events in arrival order.  First appearance
    orders by (time, shard position, in-shard index) — exactly
    :meth:`LogStore.merged`'s interleaving key — and shard locality puts
    all of a domain's events in one shard, so replaying per-shard event
    lists in that domain order reproduces the merged event list.  A
    domain counts as unknown only if some shard flagged it and no shard
    correlated it (the shard that owns a decoy resolves its domain;
    other shards never see it).

    Every contribution is tagged with its *global* shard index, so
    :meth:`add` and :meth:`merge` commute: the sharded supervisor folds
    correlations pairwise in worker-completion order and still gets the
    exact batch result.
    """

    def __init__(self):
        self._first_key: Dict[str, Tuple[float, int, int]] = {}
        self._events: Dict[str, List[Tuple[int, List[ShadowingEvent]]]] = {}
        self._arrivals: Dict[str, Tuple[int, LoggedRequest]] = {}
        self._flagged_unknown: Set[str] = set()

    def add(self, shard: ShardCorrelation, position: int) -> "CorrelationMerger":
        """Fold one shard's correlation in; ``position`` is its global
        shard index (the batch iteration order)."""
        first_key = self._first_key
        for time, index, domain in shard.firsts:
            key = (time, position, index)
            existing = first_key.get(domain)
            if existing is None or key < existing:
                first_key[domain] = key
        for domain, domain_events in shard.events.items():
            if domain_events:
                self._events.setdefault(domain, []).append(
                    (position, domain_events))
        for domain, arrival in shard.initial_arrivals.items():
            existing = self._arrivals.get(domain)
            if existing is None or position > existing[0]:
                self._arrivals[domain] = (position, arrival)
        self._flagged_unknown.update(shard.unknown_domains)
        return self

    def merge(self, other: "CorrelationMerger") -> "CorrelationMerger":
        """Fold another partial accumulation in (associative/commutative)."""
        for domain, key in other._first_key.items():
            existing = self._first_key.get(domain)
            if existing is None or key < existing:
                self._first_key[domain] = key
        for domain, groups in other._events.items():
            self._events.setdefault(domain, []).extend(groups)
        for domain, tagged in other._arrivals.items():
            existing = self._arrivals.get(domain)
            if existing is None or tagged[0] > existing[0]:
                self._arrivals[domain] = tagged
        self._flagged_unknown.update(other._flagged_unknown)
        return self

    def result(self) -> CorrelationResult:
        """The batch-identical merged correlation."""
        result = CorrelationResult()
        for domain in sorted(self._first_key, key=self._first_key.__getitem__):
            correlated = False
            groups = self._events.get(domain)
            if groups:
                for _, domain_events in sorted(groups, key=lambda g: g[0]):
                    result.events.extend(domain_events)
                correlated = True
            tagged = self._arrivals.get(domain)
            if tagged is not None:
                result.initial_arrivals[domain] = tagged[1]
                correlated = True
            if not correlated and domain in self._flagged_unknown:
                result.unknown_domains.append(domain)
        return result


def merge_shard_correlations(
    shards: Sequence[ShardCorrelation],
) -> CorrelationResult:
    """Reconstruct ``Correlator.correlate(LogStore.merged(...))`` from
    per-shard correlations, bit for bit (see :class:`CorrelationMerger`)."""
    merger = CorrelationMerger()
    for position, shard in enumerate(shards):
        merger.add(shard, position)
    return merger.result()


def split_correlation(result: CorrelationResult, ledger: DecoyLedger,
                      phase: int) -> CorrelationResult:
    """Restrict a ``phase=None`` correlation to one phase, matching what
    ``Correlator.correlate(log, phase=phase)`` would have produced.

    Events and arrivals filter by their decoy's phase.  Unknown domains
    keep ledger misses unconditionally; a ledger *hit* that still went
    unknown (identifier decode failure) only surfaces in the pass whose
    phase filter admits its record, mirroring the batch control flow
    (the phase check runs before the decode check).
    """
    split = CorrelationResult()
    split.events = [event for event in result.events
                    if event.decoy.phase == phase]
    for domain, entry in result.initial_arrivals.items():
        record = ledger.lookup(domain)
        if record is not None and record.phase == phase:
            split.initial_arrivals[domain] = entry
    for domain in result.unknown_domains:
        record = ledger.lookup(domain)
        if record is None or record.phase == phase:
            split.unknown_domains.append(domain)
    return split

"""Experiment configuration.

One :class:`ExperimentConfig` fully determines a campaign: the seed fixes
every random stream, and the scale knobs trade fidelity against runtime.
Defaults give a laptop-sized campaign (~100 VPs) that reproduces every
qualitative shape; benches scale selected knobs up.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.faults.plan import FaultSpec
from repro.simkit.units import DAY, HOUR


class ConfigError(ValueError):
    """One or more invalid :class:`ExperimentConfig` fields.

    Raised by :meth:`ExperimentConfig.validate` with every problem found
    (not just the first), each as a ``field: message`` line — so a bad
    config fails before Phase I with a complete diagnosis instead of
    mid-campaign with a stack trace.
    """

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__(
            "invalid experiment config:\n  " + "\n  ".join(self.problems)
        )


@dataclass
class ExperimentConfig:
    """All knobs of one end-to-end experiment run."""

    seed: int = 20240301
    zone: str = "www.experiment.domain"

    # -- platform scale --------------------------------------------------
    vp_scale: float = 0.02
    """Fraction of the paper's 4,364 VPs to recruit (0.02 -> ~90 VPs).
    Values above 1.0 over-recruit past the paper's platform — the
    streaming planner and columnar stores make super-paper-scale sweeps
    (the ``campaign_scale`` benchmark runs up to ~23x) affordable."""

    # -- destination pools ------------------------------------------------
    web_site_count: int = 120
    """Synthetic top sites to generate (paper: Tranco top 1K)."""
    web_destination_count: int = 48
    """Addresses sampled from the pool as HTTP/TLS decoy targets
    (paper: 2,325)."""
    dns_vps_per_destination: Optional[int] = None
    """Cap VPs per DNS destination (None = all VPs, as in the paper)."""
    dns_destination_count: Optional[int] = None
    """Cap the public-resolver pool to its first N entries (None = the
    full dataset, as in the paper).  Scale benchmarks use this to keep
    the plan size proportional to the VP count under test."""
    web_vps_per_destination: int = 12
    """VPs sampled per web destination: the full cross product is
    quadratic and unnecessary for shape reproduction."""

    # -- timing ----------------------------------------------------------
    send_spacing: float = 0.5
    """Virtual seconds between consecutive decoy emissions (the ethics
    appendix's 2 packets/second/target rate limit)."""
    phase1_rounds: int = 1
    """Full round-robin passes over every (VP, destination) pair.  The
    paper cycles continuously for two months; one round already yields
    every landscape shape, additional rounds add temporal depth."""
    round_interval: float = 2 * DAY
    """Virtual time between the starts of consecutive rounds."""
    observation_window: float = 30 * DAY
    """How long after the last decoy the honeypots keep listening.
    Long enough to catch the paper's >10-day re-appearances."""

    # -- Phase II ----------------------------------------------------------
    phase2_max_ttl: int = 64
    phase2_paths_per_destination: int = 12
    """Problematic paths tracerouted per destination (sampled)."""
    phase2_observation_window: float = 12 * DAY

    # -- vetting / noise ----------------------------------------------------
    exclude_ttl_reset_providers: bool = True
    pair_resolver_filter: bool = True
    interceptors_enabled: bool = True
    """Deploy DNS interceptors as a noise source. With the pair-resolver
    filter on, affected VPs are removed before Phase I (Appendix E); the
    ablation bench turns the filter off to quantify the damage."""
    interceptor_asn_fraction: float = 0.08
    """Fraction of access-AS routers hosting interceptors, in countries
    where interception is deployed."""

    # -- observer population ------------------------------------------------
    sniffer_density_scale: float = 1.0
    """Multiplier on every on-path DPI deployment density (clamped to
    [0, 1] per deployment).  1.0 reproduces the paper's Tables 2/3
    population; 0 removes all wire sniffers; >1 grows an interception-
    heavy ecosystem.  Deployment decisions stay keyed per router, so any
    scale shards deterministically."""
    ech_adoption: float = 0.0
    """Fraction of TLS decoys sent as Encrypted Client Hello: the outer
    SNI carries only the provider's public name, so on-path DPI never
    sees the experiment domain, while the destination (which terminates
    ECH) still does — the paper's caveat that encryption does not stop
    collection *at* the endpoint.  Adoption is drawn per decoy domain
    from a keyed substream, so serial and sharded runs agree."""
    doh_adoption: float = 0.0
    """Fraction of DNS decoys tunneled over DoH: the wire carries a TLS
    session to the resolver frontend (constant SNI) instead of a
    plaintext query, blinding DNS sniffers and interceptors while the
    resolver still decodes — and shadows — the query.  Drawn per decoy
    domain from a keyed substream, like ``ech_adoption``."""
    ciphertext_observer_share: float = 0.0
    """Operator-level deployment share of ciphertext-metadata observers
    (:mod:`repro.observers.ciphertext`).  The placement planner scales
    this by each hop's topological centrality — backbones first —
    instead of spreading it uniformly; 0 deploys none."""
    ciphertext_threshold: float = 0.6
    """Score threshold of the traffic-analysis classifier.  Lower is a
    more aggressive observer (higher TPR, more false positives once
    ``ciphertext_fpr`` is nonzero); the classified set shrinks
    monotonically as the threshold rises."""
    ciphertext_fpr: float = 0.0
    """Tunable false-positive rate: sub-threshold flows are still
    flagged with this keyed-draw probability."""
    ciphertext_link_threshold: int = 3
    """Distinct decoy domains a destination address must receive before
    the destination-IP correlator links flows through it (applied at
    matrix render time, so shard merges stay order-free)."""
    nod_noise_rate: float = 0.0
    """Per-send probability of injecting one newly-observed-domain /
    DNS-tunneling style noise query (Tatang et al.) against the
    honeypot zone.  Noise labels fail the identifier checksum, so the
    correlator must file them as unknown domains — never as decoy
    aliases; the fuzzer uses this as a realism stressor."""

    # -- observer retention -------------------------------------------------
    onpath_retention_capacity: Optional[int] = None
    """Bounded FIFO :class:`~repro.observers.retention.RetentionStore`
    capacity for on-path exhibitors (``onpath.*``), modelling a DPI
    box's on-device buffer: eviction cancels still-pending unsolicited
    requests (Section 5.2's limited-storage hypothesis).  None keeps the
    unbounded warehouse behaviour.  Eviction order depends on global
    observation order, so bounded retention requires ``workers == 1``
    (enforced by :meth:`validate`)."""
    resolver_retention_capacity: Optional[int] = None
    """Retention capacity for resolver exhibitors (``resolver.*``)."""
    destination_retention_capacity: Optional[int] = None
    """Retention capacity for destination exhibitors (``dest.*``)."""

    # -- execution ----------------------------------------------------------
    workers: int = 1
    """Worker processes for the sharded campaign executor.  1 runs the
    classic single-process simulation; N > 1 partitions the (VP,
    destination) pair space into N shards simulated in parallel and
    deterministically merged — the result is identical to the serial run
    (see docs/PERFORMANCE.md)."""

    # -- robustness ---------------------------------------------------------
    faults: Optional[FaultSpec] = None
    """Deterministic fault injection (:mod:`repro.faults`): per-link
    packet loss, VP churn windows, honeypot outages, delayed/duplicated
    log appends, and the retry/backoff policy for undelivered decoys.
    None (and a spec with all rates zero) injects nothing.  Fault
    decisions are keyed by the spec's own seed, so serial and sharded
    runs of the same config see identical faults and still merge to
    byte-identical results (see docs/ROBUSTNESS.md)."""

    # -- diagnostics --------------------------------------------------------
    telemetry: bool = False
    """Collect run telemetry (repro.telemetry): counters, gauges, and
    histograms across the whole pipeline plus per-stage spans.  Purely
    observational — no random draws, no event-schedule changes — so an
    instrumented run is byte-identical to an uninstrumented one, and a
    sharded run merges to the same counters as serial.  Off by default;
    the disabled path costs one no-op call per recording site."""
    capture_pcap: Optional[str] = None
    """Write every decoy packet put on the wire to this pcap file
    (LINKTYPE_RAW; opens in Wireshark).  None disables capture.  With
    workers > 1 each shard writes its own ``<path>.shardNN`` file."""

    # -- wildcard zone ------------------------------------------------------
    wildcard_record_ttl: int = 3600
    cache_refreshing_resolvers: bool = False
    """When True, public resolvers actively refresh cached experiment
    names on TTL expiry.  The paper rules this behaviour out for the
    measured resolvers (no Figure 4 spike at the one-hour mark); the
    wildcard-TTL ablation enables it to show the counterfactual."""

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        """Check every field; raise :class:`ConfigError` listing all
        problems.

        Called at construction and again by the CLI ``run`` path and the
        scenario compiler — CLI flags and compiled scenarios mutate or
        assemble configs after ``__post_init__`` ran, and a campaign must
        never start from a config that would die mid-run.
        """
        problems: List[str] = []

        def check(ok: bool, field_name: str, message: str) -> None:
            if not ok:
                problems.append(
                    f"{field_name}: {message} "
                    f"(got {getattr(self, field_name)!r})"
                )

        check(self.vp_scale > 0.0, "vp_scale",
              "must be positive — a fraction of the paper's 4,364 VPs "
              "(values > 1 over-recruit for scale benchmarks)")
        check(self.send_spacing >= 0, "send_spacing", "must be non-negative")
        check(self.web_site_count >= 1, "web_site_count", "must be >= 1")
        check(self.web_destination_count >= 1, "web_destination_count",
              "must be >= 1")
        check(self.web_vps_per_destination >= 1, "web_vps_per_destination",
              "must be >= 1")
        check(self.dns_vps_per_destination is None
              or self.dns_vps_per_destination >= 1,
              "dns_vps_per_destination", "must be None (all VPs) or >= 1")
        check(self.dns_destination_count is None
              or self.dns_destination_count >= 1,
              "dns_destination_count",
              "must be None (full pool) or >= 1")
        check(self.phase1_rounds >= 1, "phase1_rounds", "must be >= 1")
        check(self.round_interval >= 0, "round_interval",
              "must be non-negative")
        check(self.observation_window > 0, "observation_window",
              "must be positive")
        check(self.phase2_observation_window > 0, "phase2_observation_window",
              "must be positive")
        check(1 <= self.phase2_max_ttl <= 255, "phase2_max_ttl",
              "must be in [1, 255]")
        check(self.phase2_paths_per_destination >= 1,
              "phase2_paths_per_destination", "must be >= 1")
        check(0.0 <= self.interceptor_asn_fraction <= 1.0,
              "interceptor_asn_fraction", "must be in [0, 1]")
        check(self.sniffer_density_scale >= 0.0, "sniffer_density_scale",
              "must be non-negative")
        check(0.0 <= self.ech_adoption <= 1.0, "ech_adoption",
              "must be in [0, 1]")
        check(0.0 <= self.doh_adoption <= 1.0, "doh_adoption",
              "must be in [0, 1]")
        check(0.0 <= self.ciphertext_observer_share <= 1.0,
              "ciphertext_observer_share", "must be in [0, 1]")
        check(0.0 <= self.ciphertext_threshold <= 1.0,
              "ciphertext_threshold", "must be in [0, 1]")
        check(0.0 <= self.ciphertext_fpr <= 1.0, "ciphertext_fpr",
              "must be in [0, 1]")
        check(self.ciphertext_link_threshold >= 1,
              "ciphertext_link_threshold", "must be >= 1")
        check(0.0 <= self.nod_noise_rate <= 1.0, "nod_noise_rate",
              "must be in [0, 1]")
        check(self.wildcard_record_ttl >= 1, "wildcard_record_ttl",
              "must be >= 1 second")
        check(self.workers >= 1, "workers", "must be >= 1")
        for field_name in ("onpath_retention_capacity",
                           "resolver_retention_capacity",
                           "destination_retention_capacity"):
            check(getattr(self, field_name) is None
                  or getattr(self, field_name) >= 1,
                  field_name, "must be None (unbounded) or >= 1")
        # Incompatible engine knobs: a bounded FIFO retention store evicts
        # in global observation order, which a partitioned campaign cannot
        # reproduce — the serial == sharded digest invariant would break.
        if self.workers > 1 and any(
            getattr(self, name) is not None
            for name in ("onpath_retention_capacity",
                         "resolver_retention_capacity",
                         "destination_retention_capacity")
        ):
            problems.append(
                "workers: bounded retention capacities are order-dependent "
                f"and require workers == 1 (got workers={self.workers!r})"
            )
        if problems:
            raise ConfigError(problems)

    @classmethod
    def tiny(cls, seed: int = 20240301) -> "ExperimentConfig":
        """A minimal configuration for fast tests."""
        return cls(
            seed=seed,
            vp_scale=0.004,
            web_site_count=30,
            web_destination_count=10,
            web_vps_per_destination=4,
            phase2_paths_per_destination=4,
            observation_window=15 * DAY,
            phase2_observation_window=6 * DAY,
        )

    @classmethod
    def medium(cls, seed: int = 20240301, workers: int = 1) -> "ExperimentConfig":
        """Between tiny and default scale — the campaign-benchmark config."""
        return cls(
            seed=seed,
            vp_scale=0.01,
            web_site_count=60,
            web_destination_count=24,
            web_vps_per_destination=8,
            phase2_paths_per_destination=8,
            observation_window=20 * DAY,
            phase2_observation_window=8 * DAY,
            workers=workers,
        )

    @classmethod
    def paper_scale(cls, seed: int = 20240301) -> "ExperimentConfig":
        """Full paper scale: 4,364 VPs, 1K sites.  Hours of CPU time."""
        return cls(
            seed=seed,
            vp_scale=1.0,
            web_site_count=1000,
            web_destination_count=2325,
            web_vps_per_destination=64,
            observation_window=61 * DAY,
        )

"""Sharded parallel campaign execution with deterministic merge.

The serial pipeline simulates every (vantage point, destination) pair in
one process; paper-scale campaigns (46.6M DNS + 3.4B HTTP/TLS decoys) are
then bounded by a single Python core.  This module partitions the pair
space into N shards by stable content hash (:func:`~repro.core.campaign.
pair_shard`), runs each shard's Phase I and Phase II simulation in its own
worker process with an independent ``Simulator``/``VirtualClock``, and
deterministically merges the shard outputs into a single
:class:`~repro.core.experiment.ExperimentResult` equal to the serial run.

Why the merge can be exact:

* **Keyed randomness.**  Every observable random decision (shadow/leverage
  choices, emission delays, origin picks, sniffer/interceptor placement)
  draws from ``SubstreamFactory`` substreams keyed by stable identifiers
  (domain, hop address, destination) — pure functions of the experiment
  seed, independent of arrival order and therefore of the shard layout.
* **Full-plan replay.**  Each shard replays the complete Phase I schedule
  (rate-limiter state included) but only enqueues sends for pairs it
  owns, so per-send virtual times match the serial schedule exactly.
* **Order keys.**  Every ledger record carries a (sent_at, phase, plan
  major, plan minor) key and log entries merge by (time, shard, local
  index), reproducing the serial registration/arrival order.

Data plane
----------

Workers stay alive across a two-round protocol and everything that
crosses the pipe is a compact wire-format blob (:mod:`repro.core.wire`):
Phase I payloads flow to the parent, which folds each one into pairwise
interim accumulators *as it arrives* (:class:`PairwiseMerger` over
:class:`~repro.core.correlate.CorrelationMerger` and
``AnalysisState``), computes the global Phase II plan (per-destination
quotas need the *merged* Phase I correlation), and dispatches each shard
its slice before doing any parent-side bookkeeping — Phase II simulation
overlaps the parent's ledger registration and checkpoint writes.  Final
payloads are deltas against the Phase I snapshot (ledger/log tails,
correlation-event tails, telemetry/analysis diffs), decoded against the
parent's retained Phase I payloads and merged in arrival order.  Nothing
in the protocol depends on arrival order: the accumulators are
order-independent and the final fan-in sorts by content keys.

Crash tolerance
---------------

Workers are supervised (:class:`SupervisorPolicy`): each one sends
heartbeats from a background thread, and the parent treats a dead process
*or* a stale heartbeat as a worker death.  Because every shard's
simulation is a pure function of (config, shard index, shard count), a
dead worker is simply respawned and replays its partition from the start
of the current phase: the respawn re-runs build + Phase I, the parent
verifies the replayed Phase I payload is content-identical to the
original (any divergence is a determinism bug, not a recoverable fault),
and then re-dispatches the same Phase II slice.  A fault-free N-worker
run, a worker-killed-and-respawned run, and the serial run therefore
produce identical result digests.

With a checkpoint directory, each payload's wire blob is flushed to disk
verbatim as it arrives (:mod:`repro.core.checkpoint`), and
``run_sharded(resume_dir=…)`` skips shards whose final payload survived a
previous (killed) run.
"""

import multiprocessing
import threading
import time
import traceback
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.checkpoint import CheckpointError, CheckpointStore

from repro.core.campaign import Campaign, pair_shard
from repro.core.config import ExperimentConfig
from repro.core.correlate import (
    CorrelationMerger,
    Correlator,
    DecoyRecord,
    shard_correlation,
    split_correlation,
)
from repro.core.ecosystem import build_ecosystem
from repro.core.experiment import (
    ExperimentResult,
    Phase2PlanEntry,
    plan_phase2,
    schedule_phase2_entries,
)
from repro.core.phase2 import HopByHopTracer
from repro.core.wire import (
    LedgerKey,
    ShardFinalPayload,
    ShardPhase1Payload,
    decode_final_payload,
    decode_phase1_payload,
    decode_plan_slice,
    encode_final_payload,
    encode_phase1_payload,
    encode_plan_slice,
)
from repro.honeypot.logstore import LogStore
from repro.telemetry.export import RunTelemetry
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import SpanTracer, merge_spans, timings_from_spans

__all__ = [
    "SupervisorPolicy",
    "ShardPhase1Payload",
    "ShardFinalPayload",
    "PairwiseMerger",
    "run_sharded",
    "ledger_digest",
    "log_digest",
    "events_digest",
    "result_digest",
]


@dataclass(frozen=True)
class SupervisorPolicy:
    """How the parent watches, times out, and respawns shard workers."""

    heartbeat_interval: float = 0.5
    """Seconds between worker heartbeats (wall clock)."""
    worker_timeout: float = 120.0
    """Seconds of silence (no heartbeat, no payload) before the parent
    declares a worker dead and respawns it.  Generous by default: a busy
    worker heartbeats from a background thread, so only a genuinely hung
    or killed process goes silent."""
    max_respawns: int = 2
    """Respawn budget per shard; exceeding it fails the run (a shard that
    keeps dying is a real bug, not a transient fault)."""
    kill_after_phase1: Optional[int] = None
    """Test hook: SIGKILL this shard's worker right after its Phase I
    payload is received, forcing the respawn-and-replay path during
    Phase II dispatch.  None disables the hook."""

    def __post_init__(self):
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.worker_timeout <= self.heartbeat_interval:
            raise ValueError("worker_timeout must exceed heartbeat_interval")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")


class PairwiseMerger:
    """Tree-structured reduction of an associative, commutative merge.

    ``push`` folds equal-rank partials together like binary addition
    (the classic binary-counter trick), so after n pushes at most
    O(log n) partials are alive and each element has participated in
    O(log n) merges — instead of the n merges a left fold performs on
    its accumulator.  For accumulators whose merge cost grows with the
    accumulated state (correlation mergers, analysis states) this turns
    the supervisor's fan-in from a 1×N barrier pass into balanced
    pairwise work that happens as payloads arrive.

    The fold order is arrival order, so the merge operation must be
    order-independent; both accumulators pushed by the supervisor are
    (their tests pin associativity/commutativity).
    """

    __slots__ = ("_merge", "_stack")

    def __init__(self, merge: Callable):
        self._merge = merge
        self._stack: List[Tuple[int, object]] = []

    def push(self, value) -> None:
        rank = 0
        stack = self._stack
        while stack and stack[-1][0] == rank:
            _, previous = stack.pop()
            value = self._merge(previous, value)
            rank += 1
        stack.append((rank, value))

    def __len__(self) -> int:
        return len(self._stack)

    def result(self):
        """Fold the surviving partials; None if nothing was pushed."""
        if not self._stack:
            return None
        partials = [value for _, value in self._stack]
        merged = partials[0]
        for value in partials[1:]:
            merged = self._merge(merged, value)
        self._stack = [(len(partials), merged)]
        return merged


def _ledger_snapshot(campaign: Campaign,
                     skip: int) -> List[Tuple[LedgerKey, DecoyRecord]]:
    return [
        (campaign.ledger_key(record.domain), record)
        for record in campaign.ledger.records_from(skip)
    ]


class _HeartbeatSender:
    """Background thread that keeps the parent's liveness clock fresh.

    The worker's main thread spends minutes inside the simulator without
    touching the pipe; this thread sends a tagged heartbeat every
    interval so the parent can tell "busy" from "hung or dead".  All pipe
    sends (heartbeats and payloads) share one lock, since Connection
    objects are not thread-safe.
    """

    def __init__(self, conn, lock: threading.Lock, interval: float):
        self._conn = conn
        self._lock = lock
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc_info):
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self):
        while not self._stop.wait(self._interval):
            try:
                with self._lock:
                    self._conn.send(("heartbeat", None))
            except (BrokenPipeError, OSError):
                return


def _shard_worker(conn, config: ExperimentConfig, shard_index: int,
                  shard_count: int, heartbeat_interval: float = 0.5) -> None:
    """Worker process body: Phase I, then (on request) Phase II.

    Payloads cross the pipe as wire blobs.  The worker keeps its own
    Phase I payload alive as the delta base for the final encoding —
    the final blob ships only what Phase II appended.
    """
    send_lock = threading.Lock()

    def send(message):
        with send_lock:
            conn.send(message)

    heartbeat = _HeartbeatSender(conn, send_lock, heartbeat_interval)
    heartbeat.__enter__()
    try:
        started = time.perf_counter()
        tracer_spans = SpanTracer(shard=shard_index)
        with tracer_spans.span("build"):
            eco = build_ecosystem(config)
        tracer_spans.virtual_now = eco.sim.now
        campaign = Campaign(eco, shard_index=shard_index, shard_count=shard_count)
        with campaign:
            with tracer_spans.span("phase1"):
                campaign.run_phase1()
            phase1_records = len(campaign.ledger)
            phase1_log_len = len(eco.deployment.log)
            vetting = campaign.vetting
            # Correlate the shard's own Phase I log: shard locality means
            # the merged correlation is exactly the merge of these (see
            # CorrelationMerger), so the parent never re-scans.
            correlator = Correlator(campaign.ledger, zone=config.zone)
            phase1_result = correlator.correlate(eco.deployment.log, phase=1)
            interim_analysis = campaign.analysis.clone()
            interim_analysis.observe_events(phase1_result.events)
            interim_analysis.set_log_entries(phase1_log_len)
            phase1_payload = ShardPhase1Payload(
                shard_index=shard_index,
                records=_ledger_snapshot(campaign, 0),
                log_entries=list(eco.deployment.log),
                sends_planned=campaign.sends_planned,
                sends_scheduled=campaign.sends_scheduled,
                last_send_time=campaign.last_send_time,
                virtual_now=eco.sim.now(),
                vetting_kept=len(vetting.kept),
                vetting_removed_ttl=len(vetting.removed_ttl_reset),
                vetting_removed_intercepted=len(vetting.removed_intercepted),
                wall_seconds=time.perf_counter() - started,
                correlation=shard_correlation(phase1_result,
                                              eco.deployment.log),
                analysis=interim_analysis.snapshot(),
                telemetry=eco.telemetry.snapshot(),
            )
            send(("phase1", encode_phase1_payload(phase1_payload)))

            command, blob = conn.recv()
            if command != "phase2":
                return
            entries = decode_plan_slice(blob)
            stage = time.perf_counter()
            tracer = HopByHopTracer(campaign)
            with tracer_spans.span("phase2"):
                schedule_phase2_entries(campaign, tracer, entries)
                eco.sim.run(until=eco.sim.now() + config.phase2_observation_window)
            # One unfiltered pass over the complete shard log; the phase
            # split is derived from it (and by the parent, after merging).
            full_result = correlator.correlate(eco.deployment.log)
            phase2 = split_correlation(full_result, campaign.ledger, 2)
            locations = tracer.locate(phase2)
            campaign.analysis.observe_events(
                event for event in full_result.events
                if event.decoy.phase == 1
            )
            campaign.analysis.observe_locations(locations)
            campaign.analysis.set_log_entries(len(eco.deployment.log))
            final_payload = ShardFinalPayload(
                shard_index=shard_index,
                records=_ledger_snapshot(campaign, phase1_records),
                log_entries=list(eco.deployment.log)[phase1_log_len:],
                locations=[
                    (probe_set.plan_index, location)
                    for probe_set, location in zip(tracer.probe_sets, locations)
                ],
                ground_truth=[
                    (obs.observed_at, obs)
                    for obs in eco.ground_truth.observations
                ],
                label_counts=dict(eco.sim.label_counts),
                processed=eco.sim.processed,
                exhibitor_counts={
                    name: (exhibitor.observed_count, exhibitor.leveraged_count)
                    for name, exhibitor in eco.exhibitors.items()
                },
                resolver_received={
                    address: model.decoys_received
                    for address, model in eco.resolver_models.items()
                },
                emitter_emitted=eco.emitter.emitted,
                virtual_now=eco.sim.now(),
                wall_seconds=time.perf_counter() - stage,
                telemetry=eco.telemetry.snapshot(),
                spans=list(tracer_spans.spans),
                correlation=shard_correlation(full_result,
                                              eco.deployment.log),
                analysis=campaign.analysis.snapshot(),
            )
            send(("final", encode_final_payload(final_payload, phase1_payload)))
    except BaseException:
        try:
            send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        heartbeat.__exit__()
        conn.close()


class _WorkerDied(Exception):
    """A shard worker stopped responding — recoverable by respawn."""

    def __init__(self, shard_index: int, reason: str):
        super().__init__(reason)
        self.shard_index = shard_index


def _phase1_fingerprint(payload: ShardPhase1Payload) -> str:
    """Content hash of a Phase I payload, for replay verification.

    A respawned worker re-derives its Phase I payload from scratch; any
    difference from the original means the simulation is not the pure
    function of (config, shard index, shard count) the whole merge
    depends on, so the supervisor refuses to continue.
    """
    import hashlib

    hasher = hashlib.sha256()
    hasher.update(repr((
        payload.shard_index, payload.sends_planned, payload.sends_scheduled,
        payload.last_send_time, payload.virtual_now, payload.vetting_kept,
        payload.vetting_removed_ttl, payload.vetting_removed_intercepted,
    )).encode())
    for key, record in payload.records:
        hasher.update(repr((key, record.domain, record.protocol,
                            record.vp_id, record.sent_at)).encode())
    for entry in payload.log_entries:
        hasher.update(repr((entry.time, entry.site, entry.protocol,
                            entry.src_address, entry.domain)).encode())
    return hasher.hexdigest()


@dataclass
class _WorkerHandle:
    """Parent-side state for one live shard worker."""

    shard_index: int
    process: multiprocessing.process.BaseProcess
    conn: object
    deadline: float = 0.0
    """Monotonic liveness deadline, refreshed by every heartbeat and
    payload; a silent worker past it is declared dead."""


class _ShardSupervisor:
    """Spawns, watches, and respawns the shard worker fleet.

    All protocol receives go through :meth:`next_payload`, which waits on
    *every* worker the caller is still expecting a payload from and
    returns blobs in arrival order — no per-shard fan-in barrier.  It
    drains heartbeats, refreshes per-worker liveness deadlines, and
    converts both a dead process and a stale heartbeat into
    :class:`_WorkerDied` — callers respond by replaying the shard in a
    fresh process (bounded by ``policy.max_respawns``).
    """

    def __init__(self, config: ExperimentConfig, shard_count: int,
                 policy: SupervisorPolicy, registry=None):
        self._mp = multiprocessing.get_context()
        self._config = config
        self._shard_count = shard_count
        self._policy = policy
        self._registry = registry
        self._handles: Dict[int, _WorkerHandle] = {}
        self._respawns: Dict[int, int] = {}

    def spawn(self, shard_index: int) -> None:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_shard_worker,
            args=(child_conn, self._config, shard_index, self._shard_count,
                  self._policy.heartbeat_interval),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._handles[shard_index] = _WorkerHandle(
            shard_index=shard_index, process=process, conn=parent_conn,
            deadline=time.monotonic() + self._policy.worker_timeout,
        )

    def kill(self, shard_index: int) -> None:
        """SIGKILL a worker (fault injection and respawn cleanup)."""
        handle = self._handles[shard_index]
        handle.process.kill()
        handle.process.join()

    def respawn(self, shard_index: int) -> None:
        used = self._respawns.get(shard_index, 0)
        if used >= self._policy.max_respawns:
            raise RuntimeError(
                f"shard {shard_index} died {used + 1} times; respawn "
                f"budget is {self._policy.max_respawns} — a shard that "
                "keeps dying is a bug, not a transient fault"
            )
        self._respawns[shard_index] = used + 1
        if self._registry is not None:
            # Created lazily so a respawn-free sharded snapshot stays
            # key-identical to the serial run's.
            self._registry.counter("shard.respawns").inc()
        handle = self._handles[shard_index]
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join()
        handle.conn.close()
        self.spawn(shard_index)

    @property
    def respawn_count(self) -> int:
        return sum(self._respawns.values())

    def next_payload(self, waiting: Dict[int, str]) -> Tuple[int, bytes]:
        """Block until any waiting worker delivers its expected payload.

        ``waiting`` maps shard index -> expected tag ("phase1"/"final").
        Returns ``(shard_index, blob)`` for the first arrival; buffered
        payloads from a since-dead worker are still drained (a worker
        that finished its send and exited did its job).
        """
        timeout = self._policy.worker_timeout
        while True:
            handles = [self._handles[index] for index in waiting]
            by_conn = {handle.conn: handle for handle in handles}
            try:
                ready = _connection_wait(list(by_conn), timeout=0.25)
            except OSError:
                ready = []
            for conn in ready:
                handle = by_conn[conn]
                expected = waiting[handle.shard_index]
                try:
                    tag, payload = conn.recv()
                except (EOFError, OSError):
                    raise _WorkerDied(
                        handle.shard_index,
                        f"shard {handle.shard_index} pipe closed before "
                        f"{expected!r}",
                    )
                if tag == "heartbeat":
                    handle.deadline = time.monotonic() + timeout
                    continue
                if tag == "error":
                    raise RuntimeError(
                        f"shard {handle.shard_index} worker failed:\n{payload}"
                    )
                if tag != expected:
                    raise RuntimeError(
                        f"shard {handle.shard_index} protocol error: "
                        f"expected {expected!r}, got {tag!r}"
                    )
                handle.deadline = time.monotonic() + timeout
                return handle.shard_index, payload
            now = time.monotonic()
            for handle in handles:
                try:
                    buffered = handle.conn.poll()
                except (BrokenPipeError, OSError):
                    buffered = False
                if not handle.process.is_alive() and not buffered:
                    raise _WorkerDied(
                        handle.shard_index,
                        f"shard {handle.shard_index} worker died with exit "
                        f"code {handle.process.exitcode} before "
                        f"{waiting[handle.shard_index]!r}",
                    )
                if now > handle.deadline:
                    handle.process.kill()
                    handle.process.join()
                    raise _WorkerDied(
                        handle.shard_index,
                        f"shard {handle.shard_index} heartbeat stale for "
                        f"{self._policy.worker_timeout:.0f}s",
                    )

    def dispatch_phase2(self, shard_index: int, blob: bytes) -> bool:
        """Send a shard its encoded Phase II slice without blocking.

        Returns False when the worker is already dead (pipe closed) —
        the caller respawns it and replays Phase I first.
        """
        handle = self._handles[shard_index]
        try:
            handle.conn.send(("phase2", blob))
        except (BrokenPipeError, OSError):
            return False
        handle.deadline = time.monotonic() + self._policy.worker_timeout
        return True

    def shutdown(self) -> None:
        for handle in self._handles.values():
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.process.join(timeout=10.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join()


def _check_consistent(payloads: Sequence[ShardPhase1Payload],
                      parent_campaign: Campaign) -> None:
    """Every shard replays the same plan; any divergence is a bug."""
    reference = payloads[0]
    for payload in payloads[1:]:
        for attribute in ("sends_planned", "last_send_time", "virtual_now",
                          "vetting_kept", "vetting_removed_ttl",
                          "vetting_removed_intercepted"):
            if getattr(payload, attribute) != getattr(reference, attribute):
                raise RuntimeError(
                    f"shard {payload.shard_index} disagrees with shard "
                    f"{reference.shard_index} on {attribute}: "
                    f"{getattr(payload, attribute)!r} != "
                    f"{getattr(reference, attribute)!r}"
                )
    vetting = parent_campaign.vetting
    if vetting is not None and len(vetting.kept) != reference.vetting_kept:
        raise RuntimeError(
            f"parent vetting kept {len(vetting.kept)} VPs but shards kept "
            f"{reference.vetting_kept}"
        )
    total_scheduled = sum(payload.sends_scheduled for payload in payloads)
    if total_scheduled != reference.sends_planned:
        raise RuntimeError(
            f"shards scheduled {total_scheduled} sends but the plan has "
            f"{reference.sends_planned}"
        )


def run_sharded(config: Optional[ExperimentConfig] = None, *,
                checkpoint_dir=None, resume_dir=None,
                supervision: Optional[SupervisorPolicy] = None,
                ) -> ExperimentResult:
    """Run one experiment across ``config.workers`` shard processes.

    The returned result is deterministically equal to the serial run of
    the same config and seed (see module docstring and
    :func:`result_digest`) — including runs where workers died and were
    respawned mid-protocol, and runs resumed from a checkpoint.

    ``checkpoint_dir`` flushes each shard payload's wire blob to disk as
    it arrives; ``resume_dir`` reopens such a directory, loads the config
    (when ``config`` is None) and every completed shard's payloads, and
    only simulates the shards that never finished.  ``supervision`` tunes
    heartbeat/timeout/respawn behaviour (defaults are production-safe).
    """
    from repro.analysis.streaming import AnalysisState

    supervision = supervision if supervision is not None else SupervisorPolicy()
    checkpoints: Optional[CheckpointStore] = None
    cached_phase1: Dict[int, ShardPhase1Payload] = {}
    cached_final: Dict[int, ShardFinalPayload] = {}
    cached_slices: Optional[List[List[Phase2PlanEntry]]] = None
    if resume_dir is not None:
        checkpoints = CheckpointStore(resume_dir)
        meta = checkpoints.load_meta()
        if config is None:
            config = checkpoints.load_config()
        elif (config.seed != meta["seed"]
              or config.workers != meta["shard_count"]):
            raise CheckpointError(
                f"checkpoint at {resume_dir} was written by seed "
                f"{meta['seed']} with {meta['shard_count']} workers; "
                f"cannot resume it with seed {config.seed} and "
                f"{config.workers} workers"
            )
    if config is None:
        raise ValueError("run_sharded needs a config or a resume_dir")
    if config.workers < 2:
        raise ValueError(
            f"run_sharded needs workers >= 2, got {config.workers}"
        )
    shard_count = config.workers
    if checkpoints is None and checkpoint_dir is not None:
        checkpoints = CheckpointStore(checkpoint_dir)
    if checkpoints is not None:
        if resume_dir is not None:
            for index in checkpoints.completed_shards(shard_count):
                if not checkpoints.has_phase1(index):
                    raise CheckpointError(
                        f"shard {index} has a final checkpoint but no "
                        "Phase I checkpoint; the directory is corrupt"
                    )
                cached_phase1[index] = checkpoints.load_phase1(index)
                cached_final[index] = checkpoints.load_final(
                    index, cached_phase1[index])
            cached_slices = checkpoints.load_phase2_plan()
        checkpoints.save_run(config, shard_count)
    started = time.perf_counter()
    spans = SpanTracer()

    # The parent builds the same deterministic world and re-runs vetting
    # itself: analyses need real VantagePoint objects in the report, and
    # vetting is a pure function of the seed, so this costs one cheap
    # pass instead of shipping objects from a worker.
    with spans.span("build"):
        eco = build_ecosystem(config)
        campaign = Campaign(eco)
        campaign.vet_platform()
    spans.virtual_now = eco.sim.now

    supervisor = _ShardSupervisor(config, shard_count, supervision,
                                  registry=eco.telemetry)
    live = [index for index in range(shard_count)
            if index not in cached_final]
    phase1_by_shard: Dict[int, ShardPhase1Payload] = dict(cached_phase1)
    wire_bytes = {"phase1": 0, "dispatch": 0, "final": 0}

    # Pairwise interim accumulators, fed on arrival: the Phase II plan
    # needs the merged Phase I correlation, and checkpointed runs persist
    # the merged interim analysis.  Both merges are order-independent, so
    # arrival order (which varies run to run) cannot leak into results.
    need_plan = cached_slices is None
    interim_correlations = PairwiseMerger(
        lambda a, b: a.merge(b)) if need_plan else None
    interim_analyses = PairwiseMerger(
        lambda a, b: a.merge(b)) if checkpoints is not None else None
    all_interim_correlations = True
    all_interim_analyses = True

    def note_phase1(payload: ShardPhase1Payload) -> None:
        nonlocal all_interim_correlations, all_interim_analyses
        if payload.correlation is None:
            all_interim_correlations = False
        elif interim_correlations is not None:
            interim_correlations.push(
                CorrelationMerger().add(payload.correlation,
                                        payload.shard_index))
        if payload.analysis is None:
            all_interim_analyses = False
        elif interim_analyses is not None:
            interim_analyses.push(AnalysisState.from_snapshot(payload.analysis))

    # Final accumulators, also fed on arrival (including from cache).
    final_correlations = PairwiseMerger(lambda a, b: a.merge(b))
    final_analyses = PairwiseMerger(lambda a, b: a.merge(b))
    all_final_correlations = True
    all_final_analyses = True

    def note_final(payload: ShardFinalPayload) -> None:
        nonlocal all_final_correlations, all_final_analyses
        if payload.correlation is None:
            all_final_correlations = False
        else:
            final_correlations.push(
                CorrelationMerger().add(payload.correlation,
                                        payload.shard_index))
        if payload.analysis is None:
            all_final_analyses = False
        else:
            final_analyses.push(AnalysisState.from_snapshot(payload.analysis))

    # Parent-side ledger registration of the Phase I records, deferred
    # until after Phase II dispatch (the streaming plan path needs only
    # the merged correlation, not the parent ledger) but idempotent so
    # the fallback interim-correlate path can pull it forward.
    interim_registered = False

    def register_interim() -> None:
        nonlocal interim_registered
        if interim_registered:
            return
        interim_registered = True
        for key, record in sorted(
            (pair for payload in phase1_payloads for pair in payload.records),
            key=lambda pair: pair[0],
        ):
            campaign.ledger.register(record)
            campaign.ledger.set_key(record.domain, key)

    for payload in cached_phase1.values():
        note_phase1(payload)
    for payload in cached_final.values():
        note_final(payload)

    try:
        with spans.span("phase1"):
            waiting: Dict[int, str] = {}
            for shard_index in live:
                supervisor.spawn(shard_index)
                waiting[shard_index] = "phase1"
            while waiting:
                try:
                    shard_index, blob = supervisor.next_payload(waiting)
                except _WorkerDied as death:
                    supervisor.respawn(death.shard_index)
                    continue
                wire_bytes["phase1"] += len(blob)
                payload = decode_phase1_payload(blob)
                phase1_by_shard[shard_index] = payload
                note_phase1(payload)
                if checkpoints is not None:
                    checkpoints.save_phase1_blob(shard_index, blob)
                del waiting[shard_index]
            phase1_payloads = [phase1_by_shard[index]
                               for index in range(shard_count)]
            _check_consistent(phase1_payloads, campaign)
        phase1_prints = {index: _phase1_fingerprint(phase1_by_shard[index])
                         for index in live}

        if (supervision.kill_after_phase1 is not None
                and supervision.kill_after_phase1 in live):
            # Fault injection: this worker is dead before Phase II
            # dispatch, so the final-collection loop must respawn it and
            # replay its partition — the path a real mid-run crash
            # exercises.
            supervisor.kill(supervision.kill_after_phase1)

        # Interim merge, part one: just enough to compute the plan.  The
        # streaming path consumes the already-merged pairwise partials;
        # only pre-streaming checkpoint payloads force a parent-side
        # re-correlation of the merged interim log.
        with spans.span("merge_interim"):
            if cached_slices is not None:
                slices = cached_slices
            else:
                if all_interim_correlations:
                    phase1_interim = interim_correlations.result().result()
                else:  # payloads from a pre-streaming shard build
                    register_interim()
                    interim_log = LogStore.merged(
                        [payload.log_entries for payload in phase1_payloads]
                    )
                    correlator = Correlator(campaign.ledger, zone=config.zone)
                    phase1_interim = correlator.correlate(interim_log, phase=1)
                entries = plan_phase2(eco, phase1_interim, config)
                slices = [[] for _ in range(shard_count)]
                for entry in entries:
                    owner = pair_shard(entry.vp_address,
                                       entry.destination_address, shard_count)
                    slices[owner].append(entry)
            slice_blobs = [encode_plan_slice(plan_slice)
                           for plan_slice in slices]

        # Dispatch before bookkeeping: Phase II simulation starts in the
        # workers while the parent registers the interim ledger and
        # writes checkpoints.
        with spans.span("phase2"):
            for shard_index in live:
                wire_bytes["dispatch"] += len(slice_blobs[shard_index])
                if supervisor.dispatch_phase2(shard_index,
                                              slice_blobs[shard_index]):
                    waiting[shard_index] = "final"
                else:
                    supervisor.respawn(shard_index)
                    waiting[shard_index] = "phase1"

        # Interim merge, part two: parent-side bookkeeping overlapped
        # with worker Phase II.
        with spans.span("merge_interim"):
            register_interim()
            if checkpoints is not None:
                checkpoints.save_phase2_plan(slices)
                if all_interim_analyses and len(interim_analyses):
                    checkpoints.save_analysis(
                        interim_analyses.result().snapshot())

        with spans.span("phase2"):
            final_by_shard: Dict[int, ShardFinalPayload] = dict(cached_final)
            while waiting:
                try:
                    shard_index, blob = supervisor.next_payload(waiting)
                except _WorkerDied as death:
                    supervisor.respawn(death.shard_index)
                    waiting[death.shard_index] = "phase1"
                    continue
                if waiting[shard_index] == "phase1":
                    # Respawn replay: verify the fresh Phase I payload is
                    # content-identical, adopt it as the shard's delta
                    # decode context, and re-dispatch the same slice.
                    wire_bytes["phase1"] += len(blob)
                    payload = decode_phase1_payload(blob)
                    if _phase1_fingerprint(payload) != phase1_prints[shard_index]:
                        raise RuntimeError(
                            f"shard {shard_index} replay diverged from its "
                            "original Phase I payload — the shard simulation "
                            "is not deterministic"
                        )
                    phase1_by_shard[shard_index] = payload
                    if checkpoints is not None:
                        checkpoints.save_phase1_blob(shard_index, blob)
                    wire_bytes["dispatch"] += len(slice_blobs[shard_index])
                    if supervisor.dispatch_phase2(shard_index,
                                                  slice_blobs[shard_index]):
                        waiting[shard_index] = "final"
                    else:
                        supervisor.respawn(shard_index)
                        waiting[shard_index] = "phase1"
                    continue
                wire_bytes["final"] += len(blob)
                payload = decode_final_payload(blob,
                                               phase1_by_shard[shard_index])
                final_by_shard[shard_index] = payload
                note_final(payload)
                if checkpoints is not None:
                    checkpoints.save_final_blob(shard_index, blob)
                del waiting[shard_index]
            final_payloads = [final_by_shard[index]
                              for index in range(shard_count)]
            # Replays re-decode Phase I; keep the list in step with the
            # decode contexts the final payloads were resolved against.
            phase1_payloads = [phase1_by_shard[index]
                               for index in range(shard_count)]
    finally:
        supervisor.shutdown()

    # -- final deterministic merge ----------------------------------------
    with spans.span("merge_final"):
        reference = final_payloads[0]
        for payload in final_payloads[1:]:
            if payload.virtual_now != reference.virtual_now:
                raise RuntimeError(
                    f"shard {payload.shard_index} ended at virtual time "
                    f"{payload.virtual_now}, expected {reference.virtual_now}"
                )

        for key, record in sorted(
            (pair for payload in final_payloads for pair in payload.records),
            key=lambda pair: pair[0],
        ):
            campaign.ledger.register(record)
            campaign.ledger.set_key(record.domain, key)

        merged_log = LogStore.merged([
            phase1.log_entries + final.log_entries
            for phase1, final in zip(phase1_payloads, final_payloads)
        ])
        eco.deployment.log = merged_log

        # Ground-truth observations fire at send-event times, which sit on
        # the scheduling grid — cross-shard ties are common.  Serial order
        # breaks those ties by plan order (heap sequence), which the
        # observed decoy's ledger key reproduces; the within-shard index
        # keeps same-send observations (e.g. several sniffers on one path)
        # in transit order.
        far_future = (float("inf"), 0, -1, -1)
        merged_truth = sorted(
            ((stamp, campaign.ledger.key_of(obs.domain) or far_future,
              payload.shard_index, index), obs)
            for payload in final_payloads
            for index, (stamp, obs) in enumerate(payload.ground_truth)
        )
        eco.ground_truth.observations = [obs for _, obs in merged_truth]

        label_counts: Dict[str, int] = {}
        processed = 0
        for payload in final_payloads:
            processed += payload.processed
            for label, count in payload.label_counts.items():
                label_counts[label] = label_counts.get(label, 0) + count
            for name, (observed, leveraged) in payload.exhibitor_counts.items():
                exhibitor = eco.exhibitors[name]
                exhibitor.observed_count += observed
                exhibitor.leveraged_count += leveraged
            for address, received in payload.resolver_received.items():
                eco.resolver_models[address].decoys_received += received
            eco.emitter.emitted += payload.emitter_emitted
        eco.sim.label_counts = label_counts
        eco.sim._processed = processed
        eco.sim.clock.advance_to(reference.virtual_now)

        shard_phase1 = phase1_payloads[0]
        campaign.sends_planned = shard_phase1.sends_planned
        campaign.sends_scheduled = sum(
            payload.sends_scheduled for payload in phase1_payloads
        )
        campaign.last_send_time = shard_phase1.last_send_time

        locations = [
            location for _, location in sorted(
                (pair for payload in final_payloads
                 for pair in payload.locations),
                key=lambda pair: pair[0],
            )
        ]

        # Telemetry merge: the parent registry holds the replayed
        # ("same"-policy) vetting counters plus zeros on everything the
        # workers executed; each worker snapshot holds its shard's slice
        # of the partitioned work.  Counter sums and bucket-wise histogram
        # adds therefore reproduce the serial totals exactly.  Folded in
        # shard order (cheap — snapshots are small) so the merged registry
        # never depends on payload arrival order.
        if config.telemetry:
            merged_metrics = MetricsRegistry()
            merged_metrics.merge_from(eco.telemetry)
            for payload in final_payloads:
                merged_metrics.merge_from(
                    MetricsRegistry.from_snapshot(payload.telemetry))
            eco.telemetry = merged_metrics

    with spans.span("correlate"):
        if all_final_correlations:
            # Fold of the workers' full-log correlations (exact — shard
            # locality, already pairwise-merged on arrival) phase-split
            # against the merged ledger, instead of re-scanning the
            # merged log twice.
            merged_correlation = final_correlations.result().result()
            phase1 = split_correlation(merged_correlation, campaign.ledger, 1)
            phase2 = split_correlation(merged_correlation, campaign.ledger, 2)
        else:  # payloads from a pre-streaming shard build
            correlator = Correlator(campaign.ledger, zone=config.zone)
            phase1 = correlator.correlate(merged_log, phase=1)
            phase2 = correlator.correlate(merged_log, phase=2)

    analysis = None
    if all_final_analyses and len(final_analyses):
        analysis = final_analyses.result()

    merged_spans = merge_spans(
        [spans.spans] + [payload.spans for payload in final_payloads])
    timings = timings_from_spans(spans.spans)
    timings["total"] = time.perf_counter() - started
    timings["virtual_span"] = eco.sim.now()
    timings["workers"] = float(shard_count)
    timings["shard_respawns"] = float(supervisor.respawn_count)
    timings["shard_phase1_wall_max"] = max(
        payload.wall_seconds for payload in phase1_payloads
    )
    timings["shard_phase2_wall_max"] = max(
        payload.wall_seconds for payload in final_payloads
    )
    timings["wire_phase1_bytes"] = float(wire_bytes["phase1"])
    timings["wire_dispatch_bytes"] = float(wire_bytes["dispatch"])
    timings["wire_final_bytes"] = float(wire_bytes["final"])

    return ExperimentResult(
        config=config,
        eco=eco,
        campaign=campaign,
        phase1=phase1,
        phase2=phase2,
        locations=locations,
        vetting=campaign.vetting,
        analysis=analysis,
        timings=timings,
        telemetry=RunTelemetry(
            metrics=eco.telemetry,
            spans=merged_spans,
            enabled=config.telemetry,
            meta={"seed": config.seed, "workers": shard_count,
                  "virtual_span": eco.sim.now()},
        ),
    )


# -- digests ---------------------------------------------------------------
#
# Content-canonical digests of the quantities the acceptance criterion
# compares: serial and sharded runs of the same config and seed must hash
# identically.  Sorting by content (not list position) keeps the digests
# robust to representation-level tie ordering.


def ledger_digest(ledger) -> str:
    import hashlib

    hasher = hashlib.sha256()
    for record in sorted(
        ledger.records(),
        key=lambda r: (r.sent_at, r.phase, r.domain),
    ):
        hasher.update(repr((
            record.domain, record.protocol, record.vp_id,
            record.destination_address, record.identity.ttl,
            record.identity.sequence, record.sent_at, record.phase,
            record.round_index, record.path_length, record.instance_country,
        )).encode())
    return hasher.hexdigest()


def log_digest(log) -> str:
    import hashlib

    hasher = hashlib.sha256()
    for entry in sorted(
        log,
        key=lambda e: (e.time, e.protocol, e.site, e.src_address, e.domain,
                       e.path or "", e.qtype or -1, e.user_agent or ""),
    ):
        hasher.update(repr((
            entry.time, entry.site, entry.protocol, entry.src_address,
            entry.domain, entry.path, entry.qtype, entry.user_agent,
        )).encode())
    return hasher.hexdigest()


def events_digest(events) -> str:
    import hashlib

    hasher = hashlib.sha256()
    for event in sorted(
        events,
        key=lambda e: (e.request.time, e.decoy.domain, e.request.protocol,
                       e.request.src_address),
    ):
        hasher.update(repr((
            event.decoy.domain, event.request.time, event.request.protocol,
            event.request.src_address, event.combo, event.origin_address,
            event.decoy.phase,
        )).encode())
    return hasher.hexdigest()


def result_digest(result: ExperimentResult) -> str:
    """One digest covering ledger, log, events, labels, and locations."""
    import hashlib

    hasher = hashlib.sha256()
    hasher.update(ledger_digest(result.ledger).encode())
    hasher.update(log_digest(result.log).encode())
    hasher.update(events_digest(result.phase1.events).encode())
    hasher.update(events_digest(result.phase2.events).encode())
    hasher.update(repr(sorted(result.eco.sim.label_counts.items())).encode())
    for location in sorted(
        result.locations,
        key=lambda l: (l.vp_id, l.destination_address, l.protocol),
    ):
        hasher.update(repr((
            location.vp_id, location.destination_address, location.protocol,
            location.trigger_ttl, location.observer_address,
            location.observer_asn, location.observer_country,
            location.path_length,
        )).encode())
    return hasher.hexdigest()

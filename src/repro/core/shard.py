"""Sharded parallel campaign execution with deterministic merge.

The serial pipeline simulates every (vantage point, destination) pair in
one process; paper-scale campaigns (46.6M DNS + 3.4B HTTP/TLS decoys) are
then bounded by a single Python core.  This module partitions the pair
space into N shards by stable content hash (:func:`~repro.core.campaign.
pair_shard`), runs each shard's Phase I and Phase II simulation in its own
worker process with an independent ``Simulator``/``VirtualClock``, and
deterministically merges the shard outputs into a single
:class:`~repro.core.experiment.ExperimentResult` equal to the serial run.

Why the merge can be exact:

* **Keyed randomness.**  Every observable random decision (shadow/leverage
  choices, emission delays, origin picks, sniffer/interceptor placement)
  draws from ``SubstreamFactory`` substreams keyed by stable identifiers
  (domain, hop address, destination) — pure functions of the experiment
  seed, independent of arrival order and therefore of the shard layout.
* **Full-plan replay.**  Each shard replays the complete Phase I schedule
  (rate-limiter state included) but only enqueues sends for pairs it
  owns, so per-send virtual times match the serial schedule exactly.
* **Order keys.**  Every ledger record carries a (sent_at, phase, plan
  major, plan minor) key and log entries merge by (time, shard, local
  index), reproducing the serial registration/arrival order.

Workers stay alive across a two-round protocol: Phase I results flow to
the parent, which merges the interim ledgers/logs, computes the global
Phase II plan (per-destination quotas need the *merged* Phase I
correlation), and dispatches each shard its slice; workers then run Phase
II over their still-live simulators and return the remainder.
"""

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.campaign import Campaign, pair_shard
from repro.core.config import ExperimentConfig
from repro.core.correlate import Correlator, DecoyRecord
from repro.core.ecosystem import build_ecosystem
from repro.core.experiment import (
    ExperimentResult,
    Phase2PlanEntry,
    plan_phase2,
    schedule_phase2_entries,
)
from repro.core.phase2 import HopByHopTracer, ObserverLocation
from repro.honeypot.logstore import LoggedRequest, LogStore
from repro.observers.exhibitor import ObservationRecord
from repro.telemetry.export import RunTelemetry
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.spans import Span, SpanTracer, merge_spans, timings_from_spans

LedgerKey = Tuple[float, int, int, int]


@dataclass
class ShardPhase1Payload:
    """Everything one shard produced during Phase I."""

    shard_index: int
    records: List[Tuple[LedgerKey, DecoyRecord]]
    log_entries: List[LoggedRequest]
    sends_planned: int
    sends_scheduled: int
    last_send_time: float
    virtual_now: float
    vetting_kept: int
    vetting_removed_ttl: int
    vetting_removed_intercepted: int
    wall_seconds: float


@dataclass
class ShardFinalPayload:
    """Phase II deltas plus final counters from one shard."""

    shard_index: int
    records: List[Tuple[LedgerKey, DecoyRecord]]
    log_entries: List[LoggedRequest]
    """Entries appended after the Phase I snapshot."""
    locations: List[Tuple[int, ObserverLocation]]
    """(plan index, location) for traceroutes this shard ran."""
    ground_truth: List[Tuple[float, ObservationRecord]]
    label_counts: Dict[str, int]
    processed: int
    exhibitor_counts: Dict[str, Tuple[int, int]]
    """Exhibitor name -> (observed_count, leveraged_count)."""
    resolver_received: Dict[str, int]
    """Destination address -> decoys_received."""
    emitter_emitted: int
    virtual_now: float
    wall_seconds: float
    telemetry: Dict[str, dict] = field(default_factory=dict)
    """This shard's full :meth:`MetricsRegistry.snapshot` (both phases —
    the worker's simulator lives across the two-round protocol)."""
    spans: List[Span] = field(default_factory=list)
    """Per-shard stage spans, tagged with the shard index."""


def _ledger_snapshot(campaign: Campaign, skip: int) -> List[Tuple[LedgerKey, DecoyRecord]]:
    return [
        (campaign.ledger_key(record.domain), record)
        for record in campaign.ledger.records()[skip:]
    ]


def _shard_worker(conn, config: ExperimentConfig, shard_index: int,
                  shard_count: int) -> None:
    """Worker process body: Phase I, then (on request) Phase II."""
    try:
        started = time.perf_counter()
        tracer_spans = SpanTracer(shard=shard_index)
        with tracer_spans.span("build"):
            eco = build_ecosystem(config)
        tracer_spans.virtual_now = eco.sim.now
        campaign = Campaign(eco, shard_index=shard_index, shard_count=shard_count)
        with campaign:
            with tracer_spans.span("phase1"):
                campaign.run_phase1()
            phase1_records = len(campaign.ledger)
            phase1_log_len = len(eco.deployment.log)
            vetting = campaign.vetting
            conn.send(("phase1", ShardPhase1Payload(
                shard_index=shard_index,
                records=_ledger_snapshot(campaign, 0),
                log_entries=list(eco.deployment.log),
                sends_planned=campaign.sends_planned,
                sends_scheduled=campaign.sends_scheduled,
                last_send_time=campaign.last_send_time,
                virtual_now=eco.sim.now(),
                vetting_kept=len(vetting.kept),
                vetting_removed_ttl=len(vetting.removed_ttl_reset),
                vetting_removed_intercepted=len(vetting.removed_intercepted),
                wall_seconds=time.perf_counter() - started,
            )))

            command, entries = conn.recv()
            if command != "phase2":
                return
            stage = time.perf_counter()
            tracer = HopByHopTracer(campaign)
            with tracer_spans.span("phase2"):
                schedule_phase2_entries(campaign, tracer, entries)
                eco.sim.run(until=eco.sim.now() + config.phase2_observation_window)
            correlator = Correlator(campaign.ledger, zone=config.zone)
            phase2 = correlator.correlate(eco.deployment.log, phase=2)
            locations = tracer.locate(phase2)
            conn.send(("final", ShardFinalPayload(
                shard_index=shard_index,
                records=_ledger_snapshot(campaign, phase1_records),
                log_entries=list(eco.deployment.log)[phase1_log_len:],
                locations=[
                    (probe_set.plan_index, location)
                    for probe_set, location in zip(tracer.probe_sets, locations)
                ],
                ground_truth=[
                    (obs.observed_at, obs)
                    for obs in eco.ground_truth.observations
                ],
                label_counts=dict(eco.sim.label_counts),
                processed=eco.sim.processed,
                exhibitor_counts={
                    name: (exhibitor.observed_count, exhibitor.leveraged_count)
                    for name, exhibitor in eco.exhibitors.items()
                },
                resolver_received={
                    address: model.decoys_received
                    for address, model in eco.resolver_models.items()
                },
                emitter_emitted=eco.emitter.emitted,
                virtual_now=eco.sim.now(),
                wall_seconds=time.perf_counter() - stage,
                telemetry=eco.telemetry.snapshot(),
                spans=list(tracer_spans.spans),
            )))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _recv(conn, process, shard_index: int, expected: str):
    """Receive one tagged message, failing fast on a dead worker."""
    while not conn.poll(1.0):
        if not process.is_alive() and not conn.poll(0):
            raise RuntimeError(
                f"shard {shard_index} worker died with exit code "
                f"{process.exitcode} before sending {expected!r}"
            )
    tag, payload = conn.recv()
    if tag == "error":
        raise RuntimeError(f"shard {shard_index} worker failed:\n{payload}")
    if tag != expected:
        raise RuntimeError(
            f"shard {shard_index} protocol error: expected {expected!r}, "
            f"got {tag!r}"
        )
    return payload


def _check_consistent(payloads: Sequence[ShardPhase1Payload],
                      parent_campaign: Campaign) -> None:
    """Every shard replays the same plan; any divergence is a bug."""
    reference = payloads[0]
    for payload in payloads[1:]:
        for attribute in ("sends_planned", "last_send_time", "virtual_now",
                          "vetting_kept", "vetting_removed_ttl",
                          "vetting_removed_intercepted"):
            if getattr(payload, attribute) != getattr(reference, attribute):
                raise RuntimeError(
                    f"shard {payload.shard_index} disagrees with shard "
                    f"{reference.shard_index} on {attribute}: "
                    f"{getattr(payload, attribute)!r} != "
                    f"{getattr(reference, attribute)!r}"
                )
    vetting = parent_campaign.vetting
    if vetting is not None and len(vetting.kept) != reference.vetting_kept:
        raise RuntimeError(
            f"parent vetting kept {len(vetting.kept)} VPs but shards kept "
            f"{reference.vetting_kept}"
        )
    total_scheduled = sum(payload.sends_scheduled for payload in payloads)
    if total_scheduled != reference.sends_planned:
        raise RuntimeError(
            f"shards scheduled {total_scheduled} sends but the plan has "
            f"{reference.sends_planned}"
        )


def run_sharded(config: ExperimentConfig) -> ExperimentResult:
    """Run one experiment across ``config.workers`` shard processes.

    The returned result is deterministically equal to the serial run of
    the same config and seed (see module docstring and
    :func:`result_digest`).
    """
    if config.workers < 2:
        raise ValueError(
            f"run_sharded needs workers >= 2, got {config.workers}"
        )
    shard_count = config.workers
    started = time.perf_counter()
    spans = SpanTracer()

    # The parent builds the same deterministic world and re-runs vetting
    # itself: analyses need real VantagePoint objects in the report, and
    # vetting is a pure function of the seed, so this costs one cheap
    # pass instead of shipping objects from a worker.
    with spans.span("build"):
        eco = build_ecosystem(config)
        campaign = Campaign(eco)
        campaign.vet_platform()
    spans.virtual_now = eco.sim.now

    mp = multiprocessing.get_context()
    workers = []
    try:
        with spans.span("phase1"):
            for shard_index in range(shard_count):
                parent_conn, child_conn = mp.Pipe()
                process = mp.Process(
                    target=_shard_worker,
                    args=(child_conn, config, shard_index, shard_count),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                workers.append((shard_index, process, parent_conn))

            phase1_payloads = [
                _recv(conn, process, shard_index, "phase1")
                for shard_index, process, conn in workers
            ]
            _check_consistent(phase1_payloads, campaign)

        # Interim merge: the Phase II plan needs per-destination quotas
        # applied to the *globally merged* Phase I correlation.
        with spans.span("merge_interim"):
            interim_records = sorted(
                (pair for payload in phase1_payloads for pair in payload.records),
                key=lambda pair: pair[0],
            )
            for key, record in interim_records:
                campaign.ledger.register(record)
                campaign._ledger_keys[record.domain] = key
            interim_log = LogStore.merged(
                [payload.log_entries for payload in phase1_payloads]
            )
            correlator = Correlator(campaign.ledger, zone=config.zone)
            phase1_interim = correlator.correlate(interim_log, phase=1)
            entries = plan_phase2(eco, phase1_interim, config)

        with spans.span("phase2"):
            slices: List[List[Phase2PlanEntry]] = [[] for _ in range(shard_count)]
            for entry in entries:
                owner = pair_shard(entry.vp_address, entry.destination_address,
                                   shard_count)
                slices[owner].append(entry)
            for shard_index, process, conn in workers:
                conn.send(("phase2", slices[shard_index]))
            final_payloads = [
                _recv(conn, process, shard_index, "final")
                for shard_index, process, conn in workers
            ]
    finally:
        for _, process, conn in workers:
            conn.close()
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join()

    # -- final deterministic merge ----------------------------------------
    with spans.span("merge_final"):
        reference = final_payloads[0]
        for payload in final_payloads[1:]:
            if payload.virtual_now != reference.virtual_now:
                raise RuntimeError(
                    f"shard {payload.shard_index} ended at virtual time "
                    f"{payload.virtual_now}, expected {reference.virtual_now}"
                )

        for key, record in sorted(
            (pair for payload in final_payloads for pair in payload.records),
            key=lambda pair: pair[0],
        ):
            campaign.ledger.register(record)
            campaign._ledger_keys[record.domain] = key

        merged_log = LogStore.merged([
            phase1.log_entries + final.log_entries
            for phase1, final in zip(phase1_payloads, final_payloads)
        ])
        eco.deployment.log = merged_log

        # Ground-truth observations fire at send-event times, which sit on
        # the scheduling grid — cross-shard ties are common.  Serial order
        # breaks those ties by plan order (heap sequence), which the
        # observed decoy's ledger key reproduces; the within-shard index
        # keeps same-send observations (e.g. several sniffers on one path)
        # in transit order.
        far_future = (float("inf"), 0, -1, -1)
        merged_truth = sorted(
            ((stamp, campaign._ledger_keys.get(obs.domain, far_future),
              payload.shard_index, index), obs)
            for payload in final_payloads
            for index, (stamp, obs) in enumerate(payload.ground_truth)
        )
        eco.ground_truth.observations = [obs for _, obs in merged_truth]

        label_counts: Dict[str, int] = {}
        processed = 0
        for payload in final_payloads:
            processed += payload.processed
            for label, count in payload.label_counts.items():
                label_counts[label] = label_counts.get(label, 0) + count
            for name, (observed, leveraged) in payload.exhibitor_counts.items():
                exhibitor = eco.exhibitors[name]
                exhibitor.observed_count += observed
                exhibitor.leveraged_count += leveraged
            for address, received in payload.resolver_received.items():
                eco.resolver_models[address].decoys_received += received
            eco.emitter.emitted += payload.emitter_emitted
        eco.sim.label_counts = label_counts
        eco.sim._processed = processed
        eco.sim.clock.advance_to(reference.virtual_now)

        shard_phase1 = phase1_payloads[0]
        campaign.sends_planned = shard_phase1.sends_planned
        campaign.sends_scheduled = sum(
            payload.sends_scheduled for payload in phase1_payloads
        )
        campaign.last_send_time = shard_phase1.last_send_time

        locations = [
            location for _, location in sorted(
                (pair for payload in final_payloads
                 for pair in payload.locations),
                key=lambda pair: pair[0],
            )
        ]

        # Telemetry merge: the parent registry holds the replayed
        # ("same"-policy) vetting counters plus zeros on everything the
        # workers executed; each worker snapshot holds its shard's slice
        # of the partitioned work.  Counter sums and bucket-wise histogram
        # adds therefore reproduce the serial totals exactly.
        if config.telemetry:
            merged_metrics = MetricsRegistry()
            merged_metrics.merge_from(eco.telemetry)
            for payload in final_payloads:
                merged_metrics.merge_from(
                    MetricsRegistry.from_snapshot(payload.telemetry))
            eco.telemetry = merged_metrics

    with spans.span("correlate"):
        phase1 = correlator.correlate(merged_log, phase=1)
        phase2 = correlator.correlate(merged_log, phase=2)

    merged_spans = merge_spans(
        [spans.spans] + [payload.spans for payload in final_payloads])
    timings = timings_from_spans(spans.spans)
    timings["total"] = time.perf_counter() - started
    timings["virtual_span"] = eco.sim.now()
    timings["workers"] = float(shard_count)
    timings["shard_phase1_wall_max"] = max(
        payload.wall_seconds for payload in phase1_payloads
    )
    timings["shard_phase2_wall_max"] = max(
        payload.wall_seconds for payload in final_payloads
    )

    return ExperimentResult(
        config=config,
        eco=eco,
        campaign=campaign,
        phase1=phase1,
        phase2=phase2,
        locations=locations,
        vetting=campaign.vetting,
        timings=timings,
        telemetry=RunTelemetry(
            metrics=eco.telemetry,
            spans=merged_spans,
            enabled=config.telemetry,
            meta={"seed": config.seed, "workers": shard_count,
                  "virtual_span": eco.sim.now()},
        ),
    )


# -- digests ---------------------------------------------------------------
#
# Content-canonical digests of the quantities the acceptance criterion
# compares: serial and sharded runs of the same config and seed must hash
# identically.  Sorting by content (not list position) keeps the digests
# robust to representation-level tie ordering.


def ledger_digest(ledger) -> str:
    import hashlib

    hasher = hashlib.sha256()
    for record in sorted(
        ledger.records(),
        key=lambda r: (r.sent_at, r.phase, r.domain),
    ):
        hasher.update(repr((
            record.domain, record.protocol, record.vp_id,
            record.destination_address, record.identity.ttl,
            record.identity.sequence, record.sent_at, record.phase,
            record.round_index, record.path_length, record.instance_country,
        )).encode())
    return hasher.hexdigest()


def log_digest(log) -> str:
    import hashlib

    hasher = hashlib.sha256()
    for entry in sorted(
        log,
        key=lambda e: (e.time, e.protocol, e.site, e.src_address, e.domain,
                       e.path or "", e.qtype or -1, e.user_agent or ""),
    ):
        hasher.update(repr((
            entry.time, entry.site, entry.protocol, entry.src_address,
            entry.domain, entry.path, entry.qtype, entry.user_agent,
        )).encode())
    return hasher.hexdigest()


def events_digest(events) -> str:
    import hashlib

    hasher = hashlib.sha256()
    for event in sorted(
        events,
        key=lambda e: (e.request.time, e.decoy.domain, e.request.protocol,
                       e.request.src_address),
    ):
        hasher.update(repr((
            event.decoy.domain, event.request.time, event.request.protocol,
            event.request.src_address, event.combo, event.origin_address,
            event.decoy.phase,
        )).encode())
    return hasher.hexdigest()


def result_digest(result: ExperimentResult) -> str:
    """One digest covering ledger, log, events, labels, and locations."""
    import hashlib

    hasher = hashlib.sha256()
    hasher.update(ledger_digest(result.ledger).encode())
    hasher.update(log_digest(result.log).encode())
    hasher.update(events_digest(result.phase1.events).encode())
    hasher.update(events_digest(result.phase2.events).encode())
    hasher.update(repr(sorted(result.eco.sim.label_counts.items())).encode())
    for location in sorted(
        result.locations,
        key=lambda l: (l.vp_id, l.destination_address, l.protocol),
    ):
        hasher.update(repr((
            location.vp_id, location.destination_address, location.protocol,
            location.trigger_ttl, location.observer_address,
            location.observer_asn, location.observer_country,
            location.path_length,
        )).encode())
    return hasher.hexdigest()

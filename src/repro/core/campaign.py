"""Phase I: spreading decoys and finding problematic paths.

The campaign vets the platform (Appendices C/E), builds one path per
(vantage point, destination) pair — attaching on-path sniffers and
interceptors as the topology materializes — then schedules decoy sends
round-robin over virtual time and lets the simulator run through the
observation window.
"""

import hashlib
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.config import ExperimentConfig
from repro.core.correlate import DecoyLedger, DecoyRecord
from repro.core.decoy import DecoyFactory
from repro.core.ecosystem import Ecosystem, _resolver_asn
from repro.core.identifier import DecoyIdentity
from repro.datasets.resolvers import DnsDestination, PUBLIC_RESOLVERS
from repro.datasets.tranco import WebDestination
from repro.net.path import Path, TransitOutcome, TransitResult
from repro.net.tcpconn import TcpClient
from repro.telemetry.registry import MERGE_SAME, NULL_REGISTRY, labeled
from repro.topology.model import Endpoint
from repro.vpn.vantage import VantagePoint
from repro.vpn.vetting import VettingReport, full_vetting, vet_providers


PLANNER_ENV = "REPRO_CAMPAIGN_PLANNER"
"""Environment toggle for the Phase I planner: ``streaming`` (default)
feeds the simulator lazily from the plan generator; ``materialized``
schedules every send up front (the pre-streaming code path, kept for
digest cross-checks — both planners produce byte-identical results).
The env var is inherited by sharded worker processes."""

_PATH_CACHE_LIMIT = 8192
"""Materialized :class:`PathInfo` entries kept per campaign (LRU).  An
internet-scale campaign touches millions of (VP, destination) pairs;
paths rebuild deterministically from keyed substreams, so eviction only
costs the rebuild."""

_FEED_LOOKAHEAD = 600.0
"""Virtual seconds of plan fed per feeder pull — batches the generator
work so the feeder runs once per ~1200 sends, not once per event."""


def pair_shard(vp_address: str, destination_address: str, shard_count: int) -> int:
    """Deterministic shard assignment of one (VP, destination) pair.

    A stable content hash (not Python's salted ``hash``) keeps the
    partition identical across processes and runs, so every send — Phase I
    decoys and Phase II probes alike — for a given pair lands in the same
    shard regardless of worker count or scheduling order.
    """
    if shard_count <= 1:
        return 0
    digest = hashlib.sha256(
        f"{vp_address}|{destination_address}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big") % shard_count


@dataclass
class PathInfo:
    """One materialized client-server path with its decorations."""

    path: Path
    vp: VantagePoint
    destination_address: str
    instance_country: str
    has_interceptor: bool


@dataclass
class SendOutcome:
    """What one decoy send produced at the network layer."""

    record: DecoyRecord
    transit: TransitResult


class Campaign:
    """Phase I executor bound to one ecosystem.

    ``shard_index``/``shard_count`` partition the (VP, destination) pair
    space: a sharded campaign replays the *full* deterministic Phase I
    plan (so rate-limiter state and send times match the serial schedule
    exactly) but materializes paths and enqueues simulator events only
    for pairs it owns.  The default (0, 1) owns everything — the serial
    campaign is just the one-shard special case.
    """

    def __init__(self, eco: Ecosystem, shard_index: int = 0, shard_count: int = 1):
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        if not 0 <= shard_index < shard_count:
            raise ValueError(
                f"shard_index must be in [0, {shard_count}), got {shard_index}"
            )
        self.eco = eco
        self.config = eco.config
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.ledger = DecoyLedger()
        # Streaming analysis state, fed at send time (decoys) and at phase
        # boundaries (correlated events / Phase II verdicts); shards ship
        # it over the worker pipe and the supervisor merges exactly.
        from repro.analysis.streaming import AnalysisState
        matrix_enabled = (eco.config.ciphertext_observer_share > 0.0
                          or eco.config.doh_adoption > 0.0)
        self.analysis = AnalysisState(
            directory=eco.directory, blocklist=eco.blocklist,
            matrix_enabled=matrix_enabled,
            matrix_link_threshold=eco.config.ciphertext_link_threshold)
        self.factory = DecoyFactory(
            zone=eco.config.zone, rng=eco.router.stream("decoy.factory"),
            ech_adoption=eco.config.ech_adoption,
            ech_streams=(eco.router.substreams("decoy.ech")
                         if eco.config.ech_adoption > 0.0 else None),
            doh_adoption=eco.config.doh_adoption,
            doh_streams=(eco.router.substreams("decoy.doh")
                         if eco.config.doh_adoption > 0.0 else None),
        )
        self._flow_context: Optional[Tuple[str, str, int]] = None
        """(domain, mitigation, phase) of the decoy currently on the wire.
        Path taps fire synchronously inside the transit call, so observer
        flow reports attribute their capture to this context; cleared the
        moment the attempt returns."""
        if matrix_enabled:
            # The matrix needs per-observer-class attribution, which the
            # exhibitor pipeline deliberately erases; both deployments
            # forward their captures here instead.
            eco.observer_deployment.flow_sink = self._sni_flow_report
            if eco.ciphertext_deployment is not None:
                eco.ciphertext_deployment.flow_sink = self._ciphertext_flow_report
        self._nod_streams = (eco.router.substreams("noise.nod")
                             if eco.config.nod_noise_rate > 0.0 else None)
        self._paths: "OrderedDict[Tuple[str, str], PathInfo]" = OrderedDict()
        self._sequences: Dict[Tuple[str, str], int] = {}
        self._web_choices: Dict[int, List[VantagePoint]] = {}
        """VPs sampled per web destination (keyed by destination position),
        drawn lazily from the sequential ``campaign.web.vps`` stream in
        destination order — exactly the draws the up-front planner made."""
        self._web_sampler = None
        self.vetting: Optional[VettingReport] = None
        self.sends_planned = 0
        self.sends_scheduled = 0
        self.last_send_time = 0.0
        metrics = eco.telemetry if eco.telemetry is not None else NULL_REGISTRY
        self._metrics = metrics
        # Per-(protocol, phase) send counters, resolved once so the
        # per-send cost is a dict lookup plus one (possibly no-op) inc.
        self._m_sent = {
            (protocol, phase): metrics.counter(
                labeled("campaign.decoys_sent", protocol=protocol, phase=phase))
            for protocol in ("dns", "http", "tls")
            for phase in (1, 2)
        }
        self._m_path_length = metrics.histogram(
            "campaign.path_length", (4, 6, 8, 10, 12))
        # Fault/robustness instrumentation (see docs/ROBUSTNESS.md): every
        # injected fault and every recovery action is a counted event.
        self._m_packets_lost = metrics.counter("faults.packets_lost")
        self._m_retries = metrics.counter("campaign.send_retries")
        self._m_retry_backoff = metrics.histogram(
            "campaign.retry_backoff_virtual", (2, 8, 32, 128))
        self._m_abandoned = metrics.counter("faults.sends_abandoned")
        self._pcap = None
        self._pcap_stream = None
        if eco.config.capture_pcap:
            from repro.net.pcap import PcapWriter
            pcap_path = eco.config.capture_pcap
            if shard_count > 1:
                # Each worker writes its own capture next to the requested
                # one; merging pcaps across shards is an offline concern.
                pcap_path = f"{pcap_path}.shard{shard_index:02d}"
            self._pcap_stream = open(pcap_path, "wb")
            self._pcap = PcapWriter(self._pcap_stream)

    def close_capture(self) -> None:
        """Flush and close the decoy pcap, if one was requested."""
        if self._pcap_stream is not None:
            self._pcap_stream.close()
            self._pcap_stream = None
            self._pcap = None

    def __enter__(self) -> "Campaign":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close_capture()
        return False

    def owns_pair(self, vp_address: str, destination_address: str) -> bool:
        """Does this shard simulate sends for the given pair?"""
        return pair_shard(
            vp_address, destination_address, self.shard_count
        ) == self.shard_index

    def ledger_key(self, domain: str) -> Tuple[float, int, int, int]:
        """The deterministic merge-order key of one registered decoy.

        ``(sent_at, phase, plan major, plan minor)`` — sorting any union
        of shard ledgers by this key reproduces the serial registration
        order.  The key columns live in the ledger itself.
        """
        key = self.ledger.key_of(domain)
        if key is None:
            raise KeyError(domain)
        return key

    # -- path management -------------------------------------------------

    def path_info(self, vp: VantagePoint, destination_address: str,
                  destination_asn: int, destination_country: str,
                  service_name: str = "", attach_observers: bool = True) -> PathInfo:
        """Materialize (or fetch) the path from ``vp`` to a destination."""
        key = (vp.address, destination_address)
        info = self._paths.get(key)
        if info is not None:
            self._paths.move_to_end(key)
            return info
        topology = self.eco.topology
        instance_country = topology.anycast_instance(
            service_name, destination_country, vp.country
        )
        override = instance_country if instance_country != destination_country else None
        path = topology.build_path(
            vp.endpoint(),
            Endpoint(address=destination_address, asn=destination_asn,
                     country=destination_country),
            destination_country_override=override,
        )
        has_interceptor = False
        if attach_observers:
            ciphertext = self.eco.ciphertext_deployment
            for position in range(1, path.length):  # destination excluded
                hop = path.hop_at(position)
                sniffer = self.eco.observer_deployment.sniffer_for(hop)
                if sniffer is not None:
                    path.add_tap(position, sniffer.tap)
                if ciphertext is not None:
                    observer = ciphertext.observer_for(hop)
                    if observer is not None:
                        path.add_tap(position, observer.tap)
            first_hop = path.hop_at(1)
            has_interceptor = self.eco.interceptor_at(first_hop.address) is not None
        info = PathInfo(
            path=path,
            vp=vp,
            destination_address=destination_address,
            instance_country=instance_country,
            has_interceptor=has_interceptor,
        )
        self._paths[key] = info
        if len(self._paths) > _PATH_CACHE_LIMIT:
            # Bounded LRU: a streamed campaign touches far more pairs
            # than fit in RAM.  Rebuilding an evicted path is draw-free
            # (keyed per-pair substreams; router hops stay cached in the
            # topology) and tap attachment is idempotent, so eviction
            # never changes behavior — only costs the rebuild.
            self._paths.popitem(last=False)
        return info

    def known_paths(self) -> List[PathInfo]:
        return list(self._paths.values())

    # -- vetting ------------------------------------------------------------

    def vet_platform(self) -> VettingReport:
        """Appendix C/E: drop TTL-resetting providers and intercepted VPs."""
        vps = self.eco.platform.vantage_points
        if self.config.exclude_ttl_reset_providers and self.config.pair_resolver_filter:
            report = full_vetting(vps, PUBLIC_RESOLVERS, self._pair_probe)
        elif self.config.exclude_ttl_reset_providers:
            report = vet_providers(vps)
        else:
            report = VettingReport(kept=list(vps))
        report.record(self._metrics)
        self.eco.platform.replace_vps(report.kept)
        self.vetting = report
        return report

    def _pair_probe(self, vp: VantagePoint, pair_address: str) -> bool:
        """Does a DNS query from ``vp`` to ``pair_address`` draw a response?

        Pair resolvers run no DNS service, so the only possible responder
        is an on-path interceptor.  Paths out of a VP share their first
        (access) hop, so probing any pair address exercises the same
        client-side segment the real decoys will cross.
        """
        info = self.path_info(
            vp, pair_address,
            destination_asn=self.eco.topology.backbone_asn("US", 0),
            destination_country="US",
            attach_observers=False,
        )
        first_hop = info.path.hop_at(1)
        interceptor = self.eco.interceptor_at(first_hop.address)
        return interceptor is not None and interceptor.answers_pair_probe()

    # -- decoy emission -------------------------------------------------------

    def next_sequence(self, vp: VantagePoint, destination_address: str) -> int:
        key = (vp.address, destination_address)
        value = self._sequences.get(key, 0)
        self._sequences[key] = (value + 1) % 10000
        return value

    def send_decoy(self, info: PathInfo, protocol: str, ttl: int,
                   phase: int, destination: object,
                   round_index: int = 0,
                   plan_key: Tuple[int, int] = (-1, -1)) -> SendOutcome:
        """Build, record, and transit one decoy right now (virtual time).

        ``destination`` is either a :class:`DnsDestination` or a
        :class:`WebDestination`; delivery semantics dispatch on it.
        ``plan_key`` is the (major, minor) position of this send in the
        deterministic campaign plan — Phase I uses (plan index, 0), Phase
        II traceroutes (plan entry, ttl) — and orders cross-shard merges.
        """
        vp = info.vp
        now = self.eco.sim.now()
        identity = DecoyIdentity(
            sent_at=int(now),
            vp_address=vp.address,
            dst_address=info.destination_address,
            ttl=ttl,
            sequence=self.next_sequence(vp, info.destination_address),
        )
        decoy = self.factory.build(identity, protocol)
        packet = decoy.packet
        if vp.resets_ttl:
            # Unvetted TTL-resetting providers rewrite the IP TTL of every
            # outgoing packet (Appendix E); the identifier still encodes
            # the intended TTL, which is exactly why such VPs poison
            # Phase II localization when not excluded.
            packet = packet.with_ttl(64)
        is_dns_dest = isinstance(destination, DnsDestination)
        record = DecoyRecord(
            identity=identity,
            domain=decoy.domain,
            protocol=protocol,
            vp_id=vp.vp_id,
            vp_country=vp.country,
            vp_province=vp.province,
            destination_address=info.destination_address,
            destination_name=(
                destination.name if is_dns_dest else destination.site
            ),
            destination_kind="dns" if is_dns_dest else "web",
            destination_country=(
                destination.country if is_dns_dest else destination.country
            ),
            instance_country=info.instance_country,
            path_length=info.path.length,
            sent_at=now,
            phase=phase,
            round_index=round_index,
            mitigation=decoy.mitigation,
        )
        self.ledger.register(record)
        self.analysis.observe_decoy(record)
        self.ledger.set_key(record.domain, (now, phase, plan_key[0], plan_key[1]))
        self._m_sent[(protocol, phase)].inc()
        self._m_path_length.observe(info.path.length)
        if self._pcap is not None:
            self._pcap.write(packet, now)
        if phase == 1 and self._nod_streams is not None:
            self._schedule_nod_noise(decoy.domain)
        transit = self._attempt_transit(info, protocol, packet, phase,
                                        decoy.domain, destination, attempt=0,
                                        mitigation=decoy.mitigation)
        return SendOutcome(record=record, transit=transit)

    def _schedule_nod_noise(self, domain: str) -> None:
        """Tatang et al.-style NOD churn (opt-in realism stressor).

        With probability ``nod_noise_rate`` per Phase I decoy, one
        unrelated newly-observed domain under the experiment zone gets
        queried at the authoritative later — the background of scanners
        chasing fresh registrations that a real measurement wades
        through.  The noise label never decodes (the identifier CRC
        rejects it) and never matches a ledger entry, so the correlator
        files it under unknown domains instead of aliasing a decoy.
        """
        draw = self._nod_streams.derive(domain)
        if draw.random() >= self.config.nod_noise_rate:
            return
        from repro.core.ecosystem import AS_NOD_NOISE
        noise_name = f"nod-{draw.randrange(16 ** 12):012x}.{self.config.zone}"
        origin = self.eco.allocator.allocate(f"nod:{noise_name}")
        self.eco.directory.register(origin, AS_NOD_NOISE, "??", role="nod-scanner")
        delay = draw.uniform(60.0, 3600.0)
        self.eco.sim.schedule_in(
            delay,
            lambda noise_name=noise_name, origin=origin:
                self.eco.emitter.emit("dns", noise_name, origin),
            label="noise:nod",
        )

    # -- observer flow reports (mitigation-vs-observer matrix feed) --------

    def _sni_flow_report(self, domain: str, hop_address: str) -> None:
        """A clear-text sniffer captured ``domain`` mid-transit."""
        context = self._flow_context
        if context is None:
            return
        flow_domain, mitigation, phase = context
        if phase != 1 or domain != flow_domain:
            return
        self.analysis.observe_flow_classified("sni-dpi", mitigation, domain)

    def _ciphertext_flow_report(self, hop_address: str, src: str, dst: str,
                                classified: bool) -> None:
        """A ciphertext observer inspected the in-transit flow's metadata."""
        context = self._flow_context
        if context is None:
            return
        domain, mitigation, phase = context
        if phase != 1:
            return
        if classified:
            self.analysis.observe_flow_classified(
                "traffic-analysis", mitigation, domain)
        self.analysis.observe_flow(mitigation, domain, dst)

    def _attempt_transit(self, info: PathInfo, protocol: str, packet,
                         phase: int, domain: str, destination: object,
                         attempt: int, mitigation: str = "none") -> TransitResult:
        """One transmission attempt, with fault-aware recovery.

        When the fault plan loses the packet on a link, a Phase I decoy is
        retransmitted after exponential backoff (fresh keyed loss draws
        per attempt); exhausted retries are skipped-and-recorded — the
        ledger entry stands, the gap is a counted telemetry event, and the
        campaign carries on.  Phase II probes are never retried: a lost
        probe is just a silent TTL step, exactly like an ICMP-silent hop.
        """
        faults = self.eco.faults
        loss_at = None
        if faults is not None:
            loss_at = faults.loss_link(domain, attempt, info.path.length,
                                       packet.ip.ttl)
        self._flow_context = (domain, mitigation, phase)
        try:
            transit = self._transmit(info, protocol, packet, phase,
                                     loss_at=loss_at)
        finally:
            self._flow_context = None

        # Interception happens at the first (access) hop, so it applies to
        # any attempt the access link carried — even one lost further on.
        # DoH decoys are immune: what transits the access link is a TLS
        # session to the resolver frontend, nothing a DNS-rewriting box
        # can answer in place of the resolver.
        intercepted = False
        if (protocol == "dns" and mitigation != "doh"
                and info.has_interceptor and transit.final_position >= 1):
            first_hop = info.path.hop_at(1)
            interceptor = self.eco.interceptor_at(first_hop.address)
            if interceptor is not None:
                interceptor.on_query(domain)
                intercepted = True

        if transit.outcome is TransitOutcome.LOST:
            self._m_packets_lost.inc()
            if intercepted:
                return transit  # the interceptor already answered the VP
            if phase == 1 and attempt < faults.spec.max_retries:
                backoff = faults.retry_backoff(attempt)
                self._m_retries.inc()
                self._m_retry_backoff.observe(backoff)
                self.eco.sim.schedule_in(
                    backoff,
                    lambda info=info, protocol=protocol, packet=packet,
                           phase=phase, domain=domain,
                           destination=destination, attempt=attempt + 1,
                           mitigation=mitigation:
                        self._attempt_transit(info, protocol, packet, phase,
                                              domain, destination, attempt,
                                              mitigation=mitigation),
                    label=f"retry:{protocol}",
                )
            elif phase == 1:
                self._m_abandoned.inc()
            return transit

        if transit.delivered and not intercepted:
            self._deliver(domain, protocol, info, destination)
        return transit

    def _transmit(self, info: PathInfo, protocol: str, packet, phase: int,
                  loss_at: Optional[int] = None):
        """Put one decoy on the wire.

        Phase I HTTP/TLS decoys are sent *after a successful TCP
        handshake* with the destination (Section 3); Phase II skips the
        handshake so low-TTL probes never hold server connections open.
        DNS rides UDP either way.
        """
        if protocol in ("http", "tls") and phase == 1:
            client = TcpClient(
                path=info.path,
                src=packet.ip.src,
                src_port=packet.transport.src_port,
                dst_port=packet.transport.dst_port,
                rng=self.eco.router.stream("campaign.tcp"),
                ttl=packet.ip.ttl,
            )
            handshake = client.connect()
            if not handshake.established:
                # Live public destinations always answer, so this only
                # happens when the SYN itself expired: no decoy data was
                # exposed at all, and the send is reported as expired at
                # the SYN's expiry hop without retransmitting the payload.
                return TransitResult(
                    outcome=TransitOutcome.EXPIRED,
                    final_position=min(packet.ip.ttl, info.path.length),
                    icmp=None,
                )
            transit = client.send(packet.payload, loss_at=loss_at)
            client.close()
            return transit
        return info.path.transit(packet, loss_at=loss_at)

    def _deliver(self, domain: str, protocol: str, info: PathInfo,
                 destination: object) -> None:
        if isinstance(destination, DnsDestination):
            model = self.eco.resolver_models.get(destination.address)
            if model is not None:
                model.receive_decoy(domain, info.instance_country)
        elif isinstance(destination, WebDestination):
            self.eco.web_model.receive_decoy(destination, protocol, domain)
        else:
            raise TypeError(f"unknown destination type {type(destination)!r}")

    # -- Phase I scheduling ------------------------------------------------

    def _web_choice(self, position: int, vps: List[VantagePoint]) -> List[VantagePoint]:
        """The VPs sampled for web destination ``position`` (cached).

        First use draws from the sequential ``campaign.web.vps`` stream;
        the plan generator visits destinations in pool order, so draws
        happen in exactly the order the up-front planner made them.
        """
        chosen = self._web_choices.get(position)
        if chosen is None:
            if self._web_sampler is None:
                self._web_sampler = self.eco.router.stream("campaign.web.vps")
            chosen = self._web_sampler.sample(
                vps, min(self.config.web_vps_per_destination, len(vps)))
            self._web_choices[position] = chosen
        return chosen

    def _phase1_plan(self, start: float, vps: List[VantagePoint],
                     dns_vps: List[VantagePoint]) -> Iterator[tuple]:
        """The deterministic Phase I plan as a stream, never a list.

        Yields ``(floor, send_time, vp, destination, protocol, address,
        asn, country, service, round_index)`` tuples in plan order.
        ``floor`` is a lower bound on every *later* item's send time
        (rate limiting and churn deferral only push sends later): within
        a round the cursor is monotone, and the next round restarts at
        ``start + (round+1) * round_interval``, which can precede a long
        round's tail — hence the min.  The feeder returns ``floor`` as
        its scheduling guarantee.
        """
        config = self.config
        spacing = config.send_spacing
        rounds = max(1, config.phase1_rounds)
        for round_index in range(rounds):
            next_round_base = (
                start + (round_index + 1) * config.round_interval
                if round_index + 1 < rounds else float("inf")
            )
            send_time = start + round_index * config.round_interval
            for destination in self.eco.dns_destinations:
                address = destination.address
                asn = _resolver_asn(destination)
                country = destination.country
                service = destination.name
                for vp in dns_vps:
                    cursor = send_time + spacing
                    yield (min(cursor, next_round_base), send_time, vp,
                           destination, "dns", address, asn, country,
                           service, round_index)
                    send_time = cursor
            for position, destination in enumerate(self.eco.web_destinations):
                for vp in self._web_choice(position, vps):
                    for protocol in ("http", "tls"):
                        cursor = send_time + spacing
                        yield (min(cursor, next_round_base), send_time, vp,
                               destination, protocol, destination.address,
                               destination.asn, destination.country,
                               destination.site, round_index)
                        send_time = cursor

    def _feed_margin(self) -> float:
        """How far past the clock the fed schedule must always reach.

        Must strictly exceed every *discrete* delay an event handler can
        schedule at (continuous draws tie the 0.5s send grid with
        probability zero): the retry backoff ceiling, and — when
        refreshing resolver caches are enabled — the wildcard TTL, since
        those refreshes fire at exactly ``ttl`` after a grid-aligned
        send.  With the margin in hand, any follow-up event tying a
        planned send finds that send already queued with an earlier
        sequence number, reproducing the up-front planner's order.
        """
        margin = 64.0
        faults = self.eco.faults
        if faults is not None:
            backoff_max = faults.spec.retry_backoff_base * (
                2.0 ** max(0, faults.spec.max_retries - 1))
            margin = max(margin, 4.0 * backoff_max)
        if self.config.cache_refreshing_resolvers:
            margin = max(margin, self.config.wildcard_record_ttl + 64.0)
        return margin

    def schedule_phase1(self) -> int:
        """Queue every Phase I decoy send; returns the count scheduled.

        Sends round-robin across VPs with a per-destination rate limit
        (the ethics appendix caps traffic at 2 decoys/second/target, which
        the :class:`RoundRobinScheduler` enforces on top of the global
        spacing).  ``phase1_rounds`` repeats the whole pass, as the
        paper's two-month continuous rotation does.

        The default (streaming) planner never materializes the pair
        space: a first dry replay of the plan generator fixes the counts
        and the last send time, then a simulator feeder schedules sends
        lazily just ahead of the clock.  ``REPRO_CAMPAIGN_PLANNER=
        materialized`` selects the classic up-front path; both produce
        byte-identical campaigns (pinned by ``tests/test_properties``).
        """
        if os.environ.get(PLANNER_ENV, "streaming") == "materialized":
            return self._schedule_phase1_materialized()
        return self._schedule_phase1_streaming()

    def _phase1_vps(self) -> Tuple[List[VantagePoint], List[VantagePoint]]:
        vps = self.eco.platform.vantage_points
        if not vps:
            raise RuntimeError("no vantage points left after vetting")
        dns_vps = vps
        if self.config.dns_vps_per_destination is not None:
            dns_vps = vps[: self.config.dns_vps_per_destination]
        return vps, dns_vps

    def _note_phase1_plan(self, planned: int, scheduled: int,
                          last_time: float, deferred_by_churn: int) -> None:
        self.sends_planned += planned
        self.sends_scheduled += scheduled
        self.last_send_time = last_time
        # Every shard replays the identical plan (merge="same"); the
        # scheduled subset is partitioned work and sums back to the plan.
        self._metrics.counter(
            "campaign.sends_planned", merge=MERGE_SAME).inc(planned)
        self._metrics.counter("campaign.sends_scheduled").inc(scheduled)
        # Churn deferrals happen inside the replayed plan, so every shard
        # counts the identical total (merge="same", like sends_planned).
        self._metrics.counter(
            "faults.vp_churn_deferrals", merge=MERGE_SAME,
        ).inc(deferred_by_churn)

    def _schedule_phase1_streaming(self) -> int:
        """Stream the plan: dry-replay for totals, then feed on demand."""
        from repro.vpn.scheduler import RoundRobinScheduler

        sim = self.eco.sim
        vps, dns_vps = self._phase1_vps()
        start = sim.now()
        owns = self.owns_pair

        # Pass 1 — dry replay.  Fixes sends_planned/scheduled and the
        # last send time (run_phase1 needs it before the plan is
        # consumed), reports the churn-deferral total, and populates the
        # web VP sample cache, all in O(1) memory.  Churn windows are
        # keyed content draws, so replaying the limiter twice is free of
        # RNG side effects.
        limiter = RoundRobinScheduler(vps, per_target_interval=0.5,
                                      faults=self.eco.faults)
        planned = 0
        scheduled = 0
        last_time = start
        for item in self._phase1_plan(start, vps, dns_vps):
            send_time, vp, address = item[1], item[2], item[5]
            actual = limiter.earliest_send_time(address, send_time,
                                                vp_address=vp.address)
            planned += 1
            if actual > last_time:
                last_time = actual
            if owns(vp.address, address):
                scheduled += 1
        self._note_phase1_plan(planned, scheduled, last_time,
                               limiter.deferred_by_churn)

        # Pass 2 — the feeder.  A fresh generator and a fresh limiter
        # (its deferral count is NOT re-reported) replay the identical
        # plan; owned pairs materialize their path and enqueue the send
        # at feed time, in plan order — the same path-construction and
        # sequence-number order the up-front planner produced.
        plan = self._phase1_plan(start, vps, dns_vps)
        feed_limiter = RoundRobinScheduler(vps, per_target_interval=0.5,
                                           faults=self.eco.faults)
        next_plan_index = 0

        def feed(target: float) -> Optional[float]:
            nonlocal next_plan_index
            for (floor, send_time, vp, destination, protocol, address,
                 asn, country, service, round_index) in plan:
                actual = feed_limiter.earliest_send_time(
                    address, send_time, vp_address=vp.address)
                plan_index = next_plan_index
                next_plan_index += 1
                if owns(vp.address, address):
                    info = self.path_info(vp, address, asn, country,
                                          service_name=service)
                    sim.schedule_at(
                        actual,
                        lambda info=info, protocol=protocol,
                               destination=destination,
                               round_index=round_index,
                               plan_index=plan_index:
                            self.send_decoy(info, protocol, ttl=64, phase=1,
                                            destination=destination,
                                            round_index=round_index,
                                            plan_key=(plan_index, 0)),
                        label=f"send:{protocol}",
                    )
                if floor >= target:
                    return floor
            return None

        sim.set_feeder(feed, margin=self._feed_margin(),
                       lookahead=_FEED_LOOKAHEAD)
        return scheduled

    def _schedule_phase1_materialized(self) -> int:
        """The classic planner: every send scheduled up front."""
        from repro.vpn.scheduler import RoundRobinScheduler

        sim = self.eco.sim
        vps, dns_vps = self._phase1_vps()
        start = sim.now()
        limiter = RoundRobinScheduler(vps, per_target_interval=0.5,
                                      faults=self.eco.faults)
        planned = 0
        scheduled = 0
        last_time = start
        for (_floor, send_time, vp, destination, protocol, address,
             asn, country, service, round_index) in self._phase1_plan(
                start, vps, dns_vps):
            # Every shard replays the full plan — including rate-limiter
            # state and VP-churn deferrals — so `actual` matches the
            # serial schedule; only owned pairs materialize a path and
            # enqueue the send.
            actual = limiter.earliest_send_time(address, send_time,
                                                vp_address=vp.address)
            plan_index = planned
            planned += 1
            if actual > last_time:
                last_time = actual
            if self.owns_pair(vp.address, address):
                info = self.path_info(vp, address, asn, country,
                                      service_name=service)
                sim.schedule_at(
                    actual,
                    lambda info=info, protocol=protocol,
                           destination=destination, round_index=round_index,
                           plan_index=plan_index:
                        self.send_decoy(info, protocol, ttl=64, phase=1,
                                        destination=destination,
                                        round_index=round_index,
                                        plan_key=(plan_index, 0)),
                    label=f"send:{protocol}",
                )
                scheduled += 1
        self._note_phase1_plan(planned, scheduled, last_time,
                               limiter.deferred_by_churn)
        return scheduled

    def run_phase1(self) -> None:
        """Vet, schedule, and simulate through the observation window."""
        self.vet_platform()
        self.schedule_phase1()
        self.eco.sim.run(until=self.last_send_time + self.config.observation_window)

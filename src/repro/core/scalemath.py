"""Campaign volume arithmetic (Section 4's in-text decoy counts).

The paper reports sending 46,613,616 DNS decoys and 1,694,109,438 each of
HTTP and TLS decoys over two months of continuous round-robin rotation.
These numbers are a function of platform size, destination counts, and
rotation cadence; this module derives them from an
:class:`~repro.core.config.ExperimentConfig` so the reproduction can show
its scaled campaign sits on the same curve.
"""

from dataclasses import dataclass

from repro.core.config import ExperimentConfig
from repro.datasets.providers import PAPER_TOTAL_VP_COUNT
from repro.simkit.units import DAY

# Paper constants (Section 4).
PAPER_DNS_DECOYS = 46_613_616
PAPER_HTTP_DECOYS = 1_694_109_438
PAPER_TLS_DECOYS = 1_694_109_438
PAPER_DNS_DESTINATIONS = 36
PAPER_WEB_DESTINATIONS = 2_325
PAPER_DURATION = 61 * DAY
PAPER_DNS_PATHS = 157_000          # "157K client-server paths"
PAPER_WEB_PATHS = 10_100_000       # "10.1M paths"


@dataclass(frozen=True)
class CampaignVolume:
    """Decoy counts and derived rates for one campaign."""

    vps: int
    dns_destinations: int
    web_destinations: int
    rounds: float
    dns_decoys: float
    http_decoys: float
    tls_decoys: float
    duration: float

    @property
    def total_decoys(self) -> float:
        return self.dns_decoys + self.http_decoys + self.tls_decoys

    @property
    def decoys_per_second(self) -> float:
        return self.total_decoys / self.duration if self.duration else 0.0

    @property
    def dns_paths(self) -> int:
        return self.vps * self.dns_destinations

    @property
    def web_paths(self) -> int:
        return self.vps * self.web_destinations


def volume_for(vps: int, dns_destinations: int, web_destinations: int,
               rounds: float, duration: float) -> CampaignVolume:
    """Decoy counts for a campaign of the given shape.

    One round sends one DNS decoy per (VP, DNS destination) and one HTTP
    plus one TLS decoy per (VP, web destination).
    """
    if min(vps, dns_destinations, web_destinations) < 0 or rounds < 0:
        raise ValueError("campaign dimensions must be non-negative")
    dns = vps * dns_destinations * rounds
    web = vps * web_destinations * rounds
    return CampaignVolume(
        vps=vps,
        dns_destinations=dns_destinations,
        web_destinations=web_destinations,
        rounds=rounds,
        dns_decoys=dns,
        http_decoys=web,
        tls_decoys=web,
        duration=duration,
    )


def paper_implied_rounds() -> dict:
    """Rotation cadence the paper's counts imply.

    DNS and HTTP/TLS round counts differ — the paper rotates the (much
    cheaper) DNS sweep and the web sweep at independent cadences.
    """
    dns_rounds = PAPER_DNS_DECOYS / (PAPER_TOTAL_VP_COUNT * PAPER_DNS_DESTINATIONS)
    web_rounds = PAPER_HTTP_DECOYS / (PAPER_TOTAL_VP_COUNT * PAPER_WEB_DESTINATIONS)
    return {
        "dns_rounds": dns_rounds,
        "dns_rounds_per_day": dns_rounds / (PAPER_DURATION / DAY),
        "web_rounds": web_rounds,
        "web_rounds_per_day": web_rounds / (PAPER_DURATION / DAY),
    }


def config_volume(config: ExperimentConfig,
                  duration: float = PAPER_DURATION) -> CampaignVolume:
    """The volume a given configuration generates per its rounds."""
    from repro.datasets.providers import PAPER_TOTAL_VP_COUNT as total
    vps = round(total * config.vp_scale)
    return volume_for(
        vps=vps,
        dns_destinations=PAPER_DNS_DESTINATIONS,
        web_destinations=config.web_destination_count,
        rounds=float(max(1, config.phase1_rounds)),
        duration=duration,
    )

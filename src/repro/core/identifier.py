"""Decoy identifier codec.

Section 3: each decoy embeds a unique domain of the form::

    g6d8jjkut5obc4-9982 . www.experiment.domain
    \\__________________/
     identifier string (time, IP, TTL)

The identifier must survive a round trip through arbitrary third parties
(resolver logs, DPI extractors, probing proxies) and come back decodable,
so it is a single DNS label: base32 over a fixed binary layout plus a
checksum, then ``-<sequence>``.  Layout (15 bytes before base32):

    time-offset  u32   seconds since campaign epoch
    vp address   u32
    dst address  u32
    initial TTL  u8    (varies during Phase II tracerouting)
    checksum     u16   CRC-16/CCITT over the first 13 bytes

24 base32 characters + ``-`` + sequence stays well under the 63-byte
label limit.
"""

import base64
import struct
from dataclasses import dataclass

from repro.net.addr import ip_from_int, ip_to_int


class IdentifierError(ValueError):
    """Raised for labels that do not decode to a valid identity."""


def crc16_ccitt(data: bytes) -> int:
    """CRC-16/CCITT-FALSE — compact integrity check for identifiers."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


@dataclass(frozen=True)
class DecoyIdentity:
    """Everything a decoy's identifier encodes."""

    sent_at: int
    """Virtual seconds since campaign epoch (truncated to whole seconds)."""
    vp_address: str
    dst_address: str
    ttl: int
    sequence: int
    """Distinguishes decoys sharing (time, VP, destination, TTL)."""

    def __post_init__(self):
        if not 0 <= self.sent_at <= 0xFFFFFFFF:
            raise IdentifierError(f"sent_at out of range: {self.sent_at}")
        if not 0 <= self.ttl <= 255:
            raise IdentifierError(f"ttl out of range: {self.ttl}")
        if not 0 <= self.sequence <= 9999:
            raise IdentifierError(f"sequence out of range: {self.sequence}")


class IdentifierCodec:
    """Encodes identities into DNS labels and back."""

    def encode(self, identity: DecoyIdentity) -> str:
        packed = struct.pack(
            "!III B",
            identity.sent_at,
            ip_to_int(identity.vp_address),
            ip_to_int(identity.dst_address),
            identity.ttl,
        )
        packed += struct.pack("!H", crc16_ccitt(packed))
        token = base64.b32encode(packed).decode("ascii").lower().rstrip("=")
        return f"{token}-{identity.sequence:04d}"

    def decode(self, label: str) -> DecoyIdentity:
        """Parse one label back into an identity.

        Raises :class:`IdentifierError` for anything that is not a genuine
        experiment identifier — corrupted, truncated, or foreign labels.
        """
        token, separator, sequence_text = label.partition("-")
        # The sequence suffix must be exactly the four digits encode()
        # emits: accepting shorter or longer digit runs lets distinct
        # labels ("…-1", "…-01", "…-00001") alias onto one identity and
        # misattribute foreign traffic to a decoy.
        if (not separator or len(sequence_text) != 4
                or not sequence_text.isdigit()):
            raise IdentifierError(f"label has no sequence suffix: {label!r}")
        padding = "=" * (-len(token) % 8)
        try:
            packed = base64.b32decode(token.upper() + padding)
        except Exception as exc:
            raise IdentifierError(f"label is not base32: {label!r}") from exc
        if len(packed) != 15:
            raise IdentifierError(
                f"identifier payload must be 15 bytes, got {len(packed)}"
            )
        body, checksum_bytes = packed[:13], packed[13:]
        (expected,) = struct.unpack("!H", checksum_bytes)
        if crc16_ccitt(body) != expected:
            raise IdentifierError(f"identifier checksum mismatch in {label!r}")
        sent_at, vp_int, dst_int, ttl = struct.unpack("!III B", body)
        return DecoyIdentity(
            sent_at=sent_at,
            vp_address=ip_from_int(vp_int),
            dst_address=ip_from_int(dst_int),
            ttl=ttl,
            sequence=int(sequence_text),
        )

    def decode_domain(self, domain: str, zone: str) -> DecoyIdentity:
        """Decode the identity from a full experiment domain."""
        domain = domain.rstrip(".").lower()
        zone = zone.rstrip(".").lower()
        if not domain.endswith("." + zone):
            raise IdentifierError(f"{domain!r} is not under zone {zone!r}")
        label = domain[: -(len(zone) + 1)]
        if "." not in label:
            return self.decode(label)
        # Third parties prepend their own labels when probing
        # ("probe.<identifier>.<zone>"), so the identifier is not
        # necessarily leftmost — try every candidate label and accept the
        # one that decodes (the checksum rejects foreign labels).
        last_error: IdentifierError = IdentifierError(
            f"no decodable label in {domain!r}"
        )
        for candidate in label.split("."):
            try:
                return self.decode(candidate)
            except IdentifierError as exc:
                last_error = exc
        raise last_error

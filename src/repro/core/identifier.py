"""Decoy identifier codec.

Section 3: each decoy embeds a unique domain of the form::

    g6d8jjkut5obc4-9982 . www.experiment.domain
    \\__________________/
     identifier string (time, IP, TTL)

The identifier must survive a round trip through arbitrary third parties
(resolver logs, DPI extractors, probing proxies) and come back decodable,
so it is a single DNS label: base32 over a fixed binary layout plus a
checksum, then ``-<sequence>``.  Layout (15 bytes before base32):

    time-offset  u32   seconds since campaign epoch
    vp address   u32
    dst address  u32
    initial TTL  u8    (varies during Phase II tracerouting)
    checksum     u16   CRC-16/CCITT over the first 13 bytes

24 base32 characters + ``-`` + sequence stays well under the 63-byte
label limit.

This codec sits on the per-decoy hot path — every send encodes one
identifier and every logged request decodes up to one label per domain
component — so the implementation is profile-driven: a table-driven CRC
(one lookup per byte instead of eight shift/xor rounds), precompiled
``struct.Struct`` instances, and a memoized label decoder.  Memoizing
*failures* matters as much as successes: ``decode_domain`` tries every
label of a multi-label name, so the common case for a candidate label is
rejection, and campaign traffic repeats the same foreign labels
("probe", "www") millions of times.
"""

import base64
import struct
from dataclasses import dataclass
from functools import lru_cache

from repro.net.addr import ip_from_int, ip_to_int

_BODY = struct.Struct("!III B")
_CRC = struct.Struct("!H")


class IdentifierError(ValueError):
    """Raised for labels that do not decode to a valid identity."""


def _crc16_table() -> tuple:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021 if crc & 0x8000 else crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


_CRC16_TABLE = _crc16_table()


def crc16_ccitt(data: bytes) -> int:
    """CRC-16/CCITT-FALSE — compact integrity check for identifiers."""
    crc = 0xFFFF
    table = _CRC16_TABLE
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ table[(crc >> 8) ^ byte]
    return crc


@dataclass(frozen=True)
class DecoyIdentity:
    """Everything a decoy's identifier encodes."""

    sent_at: int
    """Virtual seconds since campaign epoch (truncated to whole seconds)."""
    vp_address: str
    dst_address: str
    ttl: int
    sequence: int
    """Distinguishes decoys sharing (time, VP, destination, TTL)."""

    def __post_init__(self):
        if not 0 <= self.sent_at <= 0xFFFFFFFF:
            raise IdentifierError(f"sent_at out of range: {self.sent_at}")
        if not 0 <= self.ttl <= 255:
            raise IdentifierError(f"ttl out of range: {self.ttl}")
        if not 0 <= self.sequence <= 9999:
            raise IdentifierError(f"sequence out of range: {self.sequence}")


@lru_cache(maxsize=65536)
def _decode_label(label: str):
    """Decode one label to a :class:`DecoyIdentity` or an
    :class:`IdentifierError` *value* — cached either way, because the
    try-every-label loop in ``decode_domain`` makes rejection the common
    outcome and the same foreign labels recur campaign-wide."""
    token, separator, sequence_text = label.partition("-")
    # The sequence suffix must be exactly the four digits encode()
    # emits: accepting shorter or longer digit runs lets distinct
    # labels ("…-1", "…-01", "…-00001") alias onto one identity and
    # misattribute foreign traffic to a decoy.
    if (not separator or len(sequence_text) != 4
            or not sequence_text.isdigit()):
        return IdentifierError(f"label has no sequence suffix: {label!r}")
    padding = "=" * (-len(token) % 8)
    try:
        packed = base64.b32decode(token.upper() + padding)
    except Exception:
        return IdentifierError(f"label is not base32: {label!r}")
    if len(packed) != 15:
        return IdentifierError(
            f"identifier payload must be 15 bytes, got {len(packed)}"
        )
    body, checksum_bytes = packed[:13], packed[13:]
    (expected,) = _CRC.unpack(checksum_bytes)
    if crc16_ccitt(body) != expected:
        return IdentifierError(f"identifier checksum mismatch in {label!r}")
    sent_at, vp_int, dst_int, ttl = _BODY.unpack(body)
    try:
        return DecoyIdentity(
            sent_at=sent_at,
            vp_address=ip_from_int(vp_int),
            dst_address=ip_from_int(dst_int),
            ttl=ttl,
            sequence=int(sequence_text),
        )
    except IdentifierError as exc:
        return exc


class IdentifierCodec:
    """Encodes identities into DNS labels and back."""

    def encode(self, identity: DecoyIdentity) -> str:
        packed = _BODY.pack(
            identity.sent_at,
            ip_to_int(identity.vp_address),
            ip_to_int(identity.dst_address),
            identity.ttl,
        )
        packed += _CRC.pack(crc16_ccitt(packed))
        token = base64.b32encode(packed).decode("ascii").lower().rstrip("=")
        return f"{token}-{identity.sequence:04d}"

    def decode(self, label: str) -> DecoyIdentity:
        """Parse one label back into an identity.

        Raises :class:`IdentifierError` for anything that is not a genuine
        experiment identifier — corrupted, truncated, or foreign labels.
        """
        result = _decode_label(label)
        if isinstance(result, IdentifierError):
            raise result
        return result

    def decode_domain(self, domain: str, zone: str) -> DecoyIdentity:
        """Decode the identity from a full experiment domain."""
        domain = domain.rstrip(".").lower()
        zone = zone.rstrip(".").lower()
        if not domain.endswith("." + zone):
            raise IdentifierError(f"{domain!r} is not under zone {zone!r}")
        label = domain[: -(len(zone) + 1)]
        if "." not in label:
            return self.decode(label)
        # Third parties prepend their own labels when probing
        # ("probe.<identifier>.<zone>"), so the identifier is not
        # necessarily leftmost — try every candidate label and accept the
        # one that decodes (the checksum rejects foreign labels).
        last_error: IdentifierError = IdentifierError(
            f"no decodable label in {domain!r}"
        )
        for candidate in label.split("."):
            result = _decode_label(candidate)
            if isinstance(result, IdentifierError):
                last_error = result
            else:
                return result
        raise last_error

"""Decoy construction.

A decoy is one protocol message carrying the experiment domain in its
clear-text name field: QNAME for DNS, Host for HTTP, SNI for TLS.  The
factory encodes full wire bytes so everything downstream (sniffers,
resolvers, honeypots) parses real messages.
"""

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.identifier import DecoyIdentity, IdentifierCodec
from repro.net.packet import Packet
from repro.protocols.dns import make_query
from repro.protocols.http import make_get
from repro.protocols.tls import ClientHello, wrap_handshake

DECOY_PROTOCOLS = ("dns", "http", "tls")

_DEFAULT_PORTS = {"dns": 53, "http": 80, "tls": 443}

ECH_PROVIDER_CONFIG = None
"""Lazily built shared :class:`~repro.mitigations.ech.EchConfig` for
ECH-adopting TLS decoys (one synthetic fronting provider)."""


def _ech_provider_config():
    global ECH_PROVIDER_CONFIG
    if ECH_PROVIDER_CONFIG is None:
        from repro.mitigations.ech import EchConfig
        ECH_PROVIDER_CONFIG = EchConfig(
            config_id=7,
            public_name="public.ech-frontend.example",
            secret=b"repro-experiment-ech-shared-key!",
        )
    return ECH_PROVIDER_CONFIG


DECOY_MITIGATIONS = ("none", "ech", "doh")


@dataclass(frozen=True)
class Decoy:
    """One decoy, ready to transit a path."""

    identity: DecoyIdentity
    protocol: str
    domain: str
    packet: Packet
    mitigation: str = "none"
    """Which encryption mitigation this decoy adopted: ``"ech"`` for TLS
    decoys carrying an Encrypted Client Hello, ``"doh"`` for DNS decoys
    tunneled to the DoH frontend, ``"none"`` for plaintext."""

    def __post_init__(self):
        if self.protocol not in DECOY_PROTOCOLS:
            raise ValueError(f"unknown decoy protocol {self.protocol!r}")
        if self.mitigation not in DECOY_MITIGATIONS:
            raise ValueError(f"unknown decoy mitigation {self.mitigation!r}")


class DecoyFactory:
    """Builds decoys for one experiment zone."""

    def __init__(self, zone: str, rng: random.Random,
                 codec: Optional[IdentifierCodec] = None,
                 ech_adoption: float = 0.0, ech_streams=None,
                 doh_adoption: float = 0.0, doh_streams=None):
        self.zone = zone.rstrip(".").lower()
        self._rng = rng
        self.codec = codec if codec is not None else IdentifierCodec()
        self.built = 0
        if not 0.0 <= ech_adoption <= 1.0:
            raise ValueError(f"ech_adoption must be in [0, 1], got {ech_adoption}")
        if ech_adoption > 0.0 and ech_streams is None:
            raise ValueError("ech_adoption > 0 needs keyed ech_streams")
        self.ech_adoption = ech_adoption
        self._ech_streams = ech_streams
        """Keyed :class:`~repro.simkit.rng.SubstreamFactory`: the adopt
        decision and the ECH sealing randomness are pure functions of the
        decoy domain, so the same decoys carry ECH in every shard layout."""
        self.ech_built = 0
        if not 0.0 <= doh_adoption <= 1.0:
            raise ValueError(f"doh_adoption must be in [0, 1], got {doh_adoption}")
        if doh_adoption > 0.0 and doh_streams is None:
            raise ValueError("doh_adoption > 0 needs keyed doh_streams")
        self.doh_adoption = doh_adoption
        self._doh_streams = doh_streams
        """Keyed like ``ech_streams``: whether a DNS decoy tunnels over
        DoH is a pure function of its domain."""
        self.doh_built = 0

    def domain_for(self, identity: DecoyIdentity) -> str:
        """The unique experiment domain embedding ``identity``."""
        return f"{self.codec.encode(identity)}.{self.zone}"

    def build(self, identity: DecoyIdentity, protocol: str,
              src_port: Optional[int] = None) -> Decoy:
        """Construct the decoy packet for ``identity`` over ``protocol``.

        The IP destination is the identity's destination address and the
        IP TTL is the identity's TTL, so Phase II probes are built through
        the exact same code path with varied identities.
        """
        if protocol not in DECOY_PROTOCOLS:
            raise ValueError(f"unknown decoy protocol {protocol!r}")
        domain = self.domain_for(identity)
        src_port = src_port if src_port is not None else self._rng.randrange(20000, 60000)
        dst_port = _DEFAULT_PORTS[protocol]
        identification = self._rng.randrange(0x10000)
        mitigation = "none"
        if protocol == "dns":
            doh_draw = None
            if self.doh_adoption > 0.0:
                doh_draw = self._doh_streams.derive("doh", domain)
            if doh_draw is not None and doh_draw.random() < self.doh_adoption:
                # DoH-adopting decoy: what crosses the wire is a TLS
                # session to the resolver's frontend — constant SNI, the
                # query sealed inside.  The simulation sends the
                # ClientHello as the flow's one on-path packet (the
                # handshake round trips add nothing observable that the
                # hello's size/timing does not already carry).
                from repro.mitigations.doh import DOH_RESOLVER_HOST
                hello = ClientHello(
                    server_name=DOH_RESOLVER_HOST,
                    random=bytes(self._rng.randrange(256) for _ in range(32)),
                )
                payload = wrap_handshake(hello.encode())
                packet = Packet.tcp(
                    src=identity.vp_address, dst=identity.dst_address,
                    ttl=identity.ttl, src_port=src_port, dst_port=443,
                    payload=payload, identification=identification,
                )
                mitigation = "doh"
                self.doh_built += 1
            else:
                payload = make_query(domain, txid=self._rng.randrange(0x10000)).encode()
                packet = Packet.udp(
                    src=identity.vp_address, dst=identity.dst_address,
                    ttl=identity.ttl, src_port=src_port, dst_port=dst_port,
                    payload=payload, identification=identification,
                )
        elif protocol == "http":
            payload = make_get(domain).encode()
            packet = Packet.tcp(
                src=identity.vp_address, dst=identity.dst_address,
                ttl=identity.ttl, src_port=src_port, dst_port=dst_port,
                payload=payload, identification=identification,
            )
        elif protocol == "tls":
            ech_draw = None
            if self.ech_adoption > 0.0:
                ech_draw = self._ech_streams.derive("ech", domain)
            if ech_draw is not None and ech_draw.random() < self.ech_adoption:
                from repro.mitigations.ech import build_ech_client_hello
                hello = build_ech_client_hello(
                    domain, _ech_provider_config(), rng=ech_draw)
                mitigation = "ech"
                self.ech_built += 1
            else:
                hello = ClientHello(
                    server_name=domain,
                    random=bytes(self._rng.randrange(256) for _ in range(32)),
                )
            payload = wrap_handshake(hello.encode())
            packet = Packet.tcp(
                src=identity.vp_address, dst=identity.dst_address,
                ttl=identity.ttl, src_port=src_port, dst_port=dst_port,
                payload=payload, identification=identification,
            )
        else:
            raise ValueError(f"unknown decoy protocol {protocol!r}")
        self.built += 1
        return Decoy(identity=identity, protocol=protocol, domain=domain,
                     packet=packet, mitigation=mitigation)

"""Decoy construction.

A decoy is one protocol message carrying the experiment domain in its
clear-text name field: QNAME for DNS, Host for HTTP, SNI for TLS.  The
factory encodes full wire bytes so everything downstream (sniffers,
resolvers, honeypots) parses real messages.
"""

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.identifier import DecoyIdentity, IdentifierCodec
from repro.net.packet import Packet
from repro.protocols.dns import make_query
from repro.protocols.http import make_get
from repro.protocols.tls import ClientHello, wrap_handshake

DECOY_PROTOCOLS = ("dns", "http", "tls")

_DEFAULT_PORTS = {"dns": 53, "http": 80, "tls": 443}


@dataclass(frozen=True)
class Decoy:
    """One decoy, ready to transit a path."""

    identity: DecoyIdentity
    protocol: str
    domain: str
    packet: Packet

    def __post_init__(self):
        if self.protocol not in DECOY_PROTOCOLS:
            raise ValueError(f"unknown decoy protocol {self.protocol!r}")


class DecoyFactory:
    """Builds decoys for one experiment zone."""

    def __init__(self, zone: str, rng: random.Random,
                 codec: Optional[IdentifierCodec] = None):
        self.zone = zone.rstrip(".").lower()
        self._rng = rng
        self.codec = codec if codec is not None else IdentifierCodec()
        self.built = 0

    def domain_for(self, identity: DecoyIdentity) -> str:
        """The unique experiment domain embedding ``identity``."""
        return f"{self.codec.encode(identity)}.{self.zone}"

    def build(self, identity: DecoyIdentity, protocol: str,
              src_port: Optional[int] = None) -> Decoy:
        """Construct the decoy packet for ``identity`` over ``protocol``.

        The IP destination is the identity's destination address and the
        IP TTL is the identity's TTL, so Phase II probes are built through
        the exact same code path with varied identities.
        """
        if protocol not in DECOY_PROTOCOLS:
            raise ValueError(f"unknown decoy protocol {protocol!r}")
        domain = self.domain_for(identity)
        src_port = src_port if src_port is not None else self._rng.randrange(20000, 60000)
        dst_port = _DEFAULT_PORTS[protocol]
        identification = self._rng.randrange(0x10000)
        if protocol == "dns":
            payload = make_query(domain, txid=self._rng.randrange(0x10000)).encode()
            packet = Packet.udp(
                src=identity.vp_address, dst=identity.dst_address,
                ttl=identity.ttl, src_port=src_port, dst_port=dst_port,
                payload=payload, identification=identification,
            )
        elif protocol == "http":
            payload = make_get(domain).encode()
            packet = Packet.tcp(
                src=identity.vp_address, dst=identity.dst_address,
                ttl=identity.ttl, src_port=src_port, dst_port=dst_port,
                payload=payload, identification=identification,
            )
        elif protocol == "tls":
            hello = ClientHello(
                server_name=domain,
                random=bytes(self._rng.randrange(256) for _ in range(32)),
            )
            payload = wrap_handshake(hello.encode())
            packet = Packet.tcp(
                src=identity.vp_address, dst=identity.dst_address,
                ttl=identity.ttl, src_port=src_port, dst_port=dst_port,
                payload=payload, identification=identification,
            )
        else:
            raise ValueError(f"unknown decoy protocol {protocol!r}")
        self.built += 1
        return Decoy(identity=identity, protocol=protocol, domain=domain, packet=packet)

"""Wire-format implementations of the three decoy protocols.

The paper lures observers with clear-text domain names in DNS QNAMEs, HTTP
``Host`` headers, and TLS SNI.  Decoys in this reproduction are encoded to
real bytes by these codecs and parsed back by observers and honeypots, so
everything the pipeline measures flows through genuine message formats.
"""

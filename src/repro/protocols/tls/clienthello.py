"""TLS ClientHello with the server_name extension (RFC 8446/6066 subset).

The TLS decoy is a syntactically valid ClientHello whose SNI carries the
experiment domain; on-path observers that parse TLS handshakes will
extract exactly this field.  Encoding follows the handshake structure:

    Handshake(type=1) > ClientHello > extensions > server_name
"""

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

HANDSHAKE_CLIENT_HELLO = 1
LEGACY_VERSION_TLS12 = 0x0303
EXT_SERVER_NAME = 0
EXT_SUPPORTED_VERSIONS = 43
_SNI_HOSTNAME_TYPE = 0

# A realistic modern cipher list (TLS 1.3 suites + common 1.2 ECDHE).
DEFAULT_CIPHER_SUITES: Tuple[int, ...] = (
    0x1301,  # TLS_AES_128_GCM_SHA256
    0x1302,  # TLS_AES_256_GCM_SHA384
    0x1303,  # TLS_CHACHA20_POLY1305_SHA256
    0xC02F,  # ECDHE-RSA-AES128-GCM-SHA256
    0xC030,  # ECDHE-RSA-AES256-GCM-SHA384
)


class TlsDecodeError(ValueError):
    """Raised when bytes do not parse as the expected handshake structure."""


def _encode_sni(hostname: str) -> bytes:
    raw = hostname.encode("ascii")
    entry = struct.pack("!BH", _SNI_HOSTNAME_TYPE, len(raw)) + raw
    server_name_list = struct.pack("!H", len(entry)) + entry
    return struct.pack("!HH", EXT_SERVER_NAME, len(server_name_list)) + server_name_list


def _decode_sni(body: bytes) -> str:
    if len(body) < 2:
        raise TlsDecodeError("server_name extension too short")
    (list_length,) = struct.unpack("!H", body[:2])
    if list_length != len(body) - 2:
        raise TlsDecodeError("server_name list length mismatch")
    cursor = 2
    while cursor < len(body):
        if cursor + 3 > len(body):
            raise TlsDecodeError("truncated server_name entry")
        name_type, name_length = struct.unpack("!BH", body[cursor : cursor + 3])
        cursor += 3
        if cursor + name_length > len(body):
            raise TlsDecodeError("server_name entry runs past extension")
        if name_type == _SNI_HOSTNAME_TYPE:
            return body[cursor : cursor + name_length].decode("ascii")
        cursor += name_length
    raise TlsDecodeError("no host_name entry in server_name extension")


@dataclass(frozen=True)
class ClientHello:
    """A ClientHello carrying SNI — the TLS decoy."""

    server_name: Optional[str]
    random: bytes
    session_id: bytes = b""
    cipher_suites: Tuple[int, ...] = DEFAULT_CIPHER_SUITES
    extra_extensions: Tuple[Tuple[int, bytes], ...] = ()

    def __post_init__(self):
        if len(self.random) != 32:
            raise TlsDecodeError(f"client random must be 32 bytes, got {len(self.random)}")
        if len(self.session_id) > 32:
            raise TlsDecodeError("session id longer than 32 bytes")
        if not self.cipher_suites:
            raise TlsDecodeError("at least one cipher suite is required")

    def encode(self) -> bytes:
        """Serialize as a Handshake message (type 1 + 24-bit length)."""
        suites = b"".join(struct.pack("!H", suite) for suite in self.cipher_suites)
        extensions = bytearray()
        if self.server_name is not None:
            extensions += _encode_sni(self.server_name)
        # supported_versions advertising TLS 1.3, as modern clients do.
        extensions += struct.pack("!HHBH", EXT_SUPPORTED_VERSIONS, 3, 2, 0x0304)
        for ext_type, ext_body in self.extra_extensions:
            extensions += struct.pack("!HH", ext_type, len(ext_body)) + ext_body
        body = (
            struct.pack("!H", LEGACY_VERSION_TLS12)
            + self.random
            + struct.pack("!B", len(self.session_id)) + self.session_id
            + struct.pack("!H", len(suites)) + suites
            + b"\x01\x00"  # compression methods: null only
            + struct.pack("!H", len(extensions)) + bytes(extensions)
        )
        return struct.pack("!B", HANDSHAKE_CLIENT_HELLO) + len(body).to_bytes(3, "big") + body

    @classmethod
    def decode(cls, data: bytes) -> "ClientHello":
        """Parse a Handshake-framed ClientHello, extracting SNI."""
        if len(data) < 4:
            raise TlsDecodeError("handshake header needs 4 bytes")
        if data[0] != HANDSHAKE_CLIENT_HELLO:
            raise TlsDecodeError(f"not a ClientHello (handshake type {data[0]})")
        body_length = int.from_bytes(data[1:4], "big")
        body = data[4 : 4 + body_length]
        if len(body) != body_length:
            raise TlsDecodeError("handshake body truncated")
        cursor = 0
        if len(body) < 2 + 32 + 1:
            raise TlsDecodeError("ClientHello body too short")
        cursor += 2  # legacy_version
        random = body[cursor : cursor + 32]
        cursor += 32
        session_id_length = body[cursor]
        cursor += 1
        session_id = body[cursor : cursor + session_id_length]
        cursor += session_id_length
        if cursor + 2 > len(body):
            raise TlsDecodeError("truncated cipher suite length")
        (suites_length,) = struct.unpack("!H", body[cursor : cursor + 2])
        cursor += 2
        if suites_length % 2 or cursor + suites_length > len(body):
            raise TlsDecodeError("malformed cipher suite list")
        suites = tuple(
            struct.unpack("!H", body[cursor + index : cursor + index + 2])[0]
            for index in range(0, suites_length, 2)
        )
        cursor += suites_length
        if cursor >= len(body):
            raise TlsDecodeError("truncated compression methods")
        compression_length = body[cursor]
        cursor += 1 + compression_length
        server_name = None
        extras = []
        if cursor + 2 <= len(body):
            (ext_total,) = struct.unpack("!H", body[cursor : cursor + 2])
            cursor += 2
            end = cursor + ext_total
            if end > len(body):
                raise TlsDecodeError("extensions run past ClientHello body")
            while cursor + 4 <= end:
                ext_type, ext_length = struct.unpack("!HH", body[cursor : cursor + 4])
                cursor += 4
                if cursor + ext_length > end:
                    raise TlsDecodeError("extension body truncated")
                ext_body = body[cursor : cursor + ext_length]
                cursor += ext_length
                if ext_type == EXT_SERVER_NAME:
                    server_name = _decode_sni(ext_body)
                elif ext_type != EXT_SUPPORTED_VERSIONS:
                    extras.append((ext_type, ext_body))
        return cls(
            server_name=server_name,
            random=random,
            session_id=session_id,
            cipher_suites=suites,
            extra_extensions=tuple(extras),
        )

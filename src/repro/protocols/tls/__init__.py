"""TLS record layer and ClientHello codec (the SNI-bearing decoy)."""

from repro.protocols.tls.clienthello import ClientHello, TlsDecodeError
from repro.protocols.tls.record import TlsPlaintext, wrap_handshake

__all__ = ["ClientHello", "TlsPlaintext", "wrap_handshake", "TlsDecodeError"]

"""TLS record layer (TLSPlaintext framing, RFC 8446 section 5.1)."""

import struct
from dataclasses import dataclass

CONTENT_TYPE_HANDSHAKE = 22
LEGACY_RECORD_VERSION = 0x0301  # TLS 1.0 on the wire, as modern stacks send
_MAX_RECORD_LENGTH = 2**14


class TlsRecordError(ValueError):
    """Raised for malformed TLS records."""


@dataclass(frozen=True)
class TlsPlaintext:
    """One TLS record: content type, legacy version, fragment."""

    content_type: int
    fragment: bytes
    legacy_version: int = LEGACY_RECORD_VERSION

    def __post_init__(self):
        if len(self.fragment) > _MAX_RECORD_LENGTH:
            raise TlsRecordError(
                f"fragment of {len(self.fragment)} bytes exceeds 2^14 record limit"
            )

    def encode(self) -> bytes:
        return struct.pack(
            "!BHH", self.content_type, self.legacy_version, len(self.fragment)
        ) + self.fragment

    @classmethod
    def decode(cls, data: bytes) -> "TlsPlaintext":
        if len(data) < 5:
            raise TlsRecordError(f"record header needs 5 bytes, got {len(data)}")
        content_type, version, length = struct.unpack("!BHH", data[:5])
        if length > _MAX_RECORD_LENGTH:
            raise TlsRecordError(f"record length {length} exceeds 2^14")
        if len(data) < 5 + length:
            raise TlsRecordError("record fragment truncated")
        return cls(content_type=content_type, legacy_version=version,
                   fragment=data[5 : 5 + length])


def wrap_handshake(handshake_bytes: bytes) -> bytes:
    """Frame handshake bytes in a single TLS record, as decoys are sent."""
    return TlsPlaintext(content_type=CONTENT_TYPE_HANDSHAKE,
                        fragment=handshake_bytes).encode()

"""TLS ServerHello (RFC 8446 subset) — the honeypot's side of the
handshake.

The honey TLS endpoint answers unsolicited ClientHellos like a real
server would: it selects a cipher suite from the client's list, echoes
the session id, and advertises TLS 1.3 via supported_versions.  Probing
clients therefore see a syntactically complete handshake start rather
than a silent socket.
"""

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.protocols.tls.clienthello import (
    ClientHello,
    EXT_SUPPORTED_VERSIONS,
    LEGACY_VERSION_TLS12,
    TlsDecodeError,
)

HANDSHAKE_SERVER_HELLO = 2

# Preference order the honeypot negotiates in (TLS 1.3 suites first).
PREFERRED_SUITES: Tuple[int, ...] = (0x1301, 0x1302, 0x1303, 0xC02F, 0xC030)


@dataclass(frozen=True)
class ServerHello:
    """A ServerHello answering one ClientHello."""

    random: bytes
    session_id: bytes
    cipher_suite: int
    selected_version: int = 0x0304  # TLS 1.3

    def __post_init__(self):
        if len(self.random) != 32:
            raise TlsDecodeError(f"server random must be 32 bytes, got {len(self.random)}")
        if len(self.session_id) > 32:
            raise TlsDecodeError("session id longer than 32 bytes")

    def encode(self) -> bytes:
        extensions = struct.pack("!HHH", EXT_SUPPORTED_VERSIONS, 2,
                                 self.selected_version)
        body = (
            struct.pack("!H", LEGACY_VERSION_TLS12)
            + self.random
            + struct.pack("!B", len(self.session_id)) + self.session_id
            + struct.pack("!H", self.cipher_suite)
            + b"\x00"  # compression: null
            + struct.pack("!H", len(extensions)) + extensions
        )
        return (struct.pack("!B", HANDSHAKE_SERVER_HELLO)
                + len(body).to_bytes(3, "big") + body)

    @classmethod
    def decode(cls, data: bytes) -> "ServerHello":
        if len(data) < 4 or data[0] != HANDSHAKE_SERVER_HELLO:
            raise TlsDecodeError("not a ServerHello")
        body_length = int.from_bytes(data[1:4], "big")
        body = data[4 : 4 + body_length]
        if len(body) != body_length:
            raise TlsDecodeError("ServerHello body truncated")
        cursor = 2  # legacy_version
        random = body[cursor : cursor + 32]
        cursor += 32
        session_id_length = body[cursor]
        cursor += 1
        session_id = body[cursor : cursor + session_id_length]
        cursor += session_id_length
        if cursor + 3 > len(body):
            raise TlsDecodeError("truncated cipher/compression fields")
        (cipher_suite,) = struct.unpack("!H", body[cursor : cursor + 2])
        cursor += 3  # suite + compression byte
        selected_version = 0x0303
        if cursor + 2 <= len(body):
            (ext_total,) = struct.unpack("!H", body[cursor : cursor + 2])
            cursor += 2
            end = cursor + ext_total
            while cursor + 4 <= end:
                ext_type, ext_length = struct.unpack("!HH", body[cursor : cursor + 4])
                cursor += 4
                ext_body = body[cursor : cursor + ext_length]
                cursor += ext_length
                if ext_type == EXT_SUPPORTED_VERSIONS and len(ext_body) == 2:
                    (selected_version,) = struct.unpack("!H", ext_body)
        return cls(random=random, session_id=session_id,
                   cipher_suite=cipher_suite, selected_version=selected_version)


def negotiate(client: ClientHello, server_random: bytes) -> ServerHello:
    """Pick the first mutually-supported suite, preferring TLS 1.3 ones.

    Raises :class:`TlsDecodeError` when no common suite exists — real
    servers answer that with a handshake_failure alert.
    """
    offered = set(client.cipher_suites)
    for suite in PREFERRED_SUITES:
        if suite in offered:
            return ServerHello(
                random=server_random,
                session_id=client.session_id,
                cipher_suite=suite,
            )
    for suite in client.cipher_suites:
        # Fall back to whatever the client leads with, if we know nothing
        # better — mirrors permissive honeypot stacks.
        return ServerHello(random=server_random, session_id=client.session_id,
                           cipher_suite=suite)
    raise TlsDecodeError("no cipher suites offered")

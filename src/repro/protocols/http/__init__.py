"""HTTP/1.1 message serializer and parser."""

from repro.protocols.http.message import (
    HttpMessageError,
    HttpRequest,
    HttpResponse,
    make_get,
)

__all__ = ["HttpRequest", "HttpResponse", "make_get", "HttpMessageError"]

"""Incremental HTTP/1.1 request parsing.

Honeypots on real networks receive requests in arbitrary TCP segment
boundaries; a parser that needs the whole message in one buffer cannot
serve a socket loop.  :class:`HttpRequestParser` accepts bytes in any
chunking, yields complete :class:`~repro.protocols.http.message.HttpRequest`
objects as they finish (Content-Length framed), and enforces bounds so a
hostile peer cannot balloon memory.
"""

from typing import List, Optional

from repro.protocols.http.message import HttpMessageError, HttpRequest

_CRLFCRLF = b"\r\n\r\n"
_DEFAULT_MAX_HEAD = 16 * 1024
_DEFAULT_MAX_BODY = 1 * 1024 * 1024


class HttpRequestParser:
    """Feed-me-bytes parser producing complete requests.

    >>> parser = HttpRequestParser()
    >>> parser.feed(b"GET / HTTP/1.1\\r\\nHost: a")
    []
    >>> [request.host for request in parser.feed(b".example\\r\\n\\r\\n")]
    ['a.example']
    """

    def __init__(self, max_head_bytes: int = _DEFAULT_MAX_HEAD,
                 max_body_bytes: int = _DEFAULT_MAX_BODY):
        if max_head_bytes < 64:
            raise ValueError(f"max_head_bytes too small: {max_head_bytes}")
        if max_body_bytes < 0:
            raise ValueError(f"max_body_bytes must be non-negative: {max_body_bytes}")
        self._buffer = bytearray()
        self._max_head = max_head_bytes
        self._max_body = max_body_bytes
        self._expected: Optional[int] = None
        """Total message size once the head has been seen; None while the
        separator is still outstanding."""
        self.requests_parsed = 0

    def feed(self, data: bytes) -> List[HttpRequest]:
        """Consume ``data``; return every request completed by it."""
        self._buffer.extend(data)
        completed: List[HttpRequest] = []
        while True:
            request = self._try_extract()
            if request is None:
                break
            completed.append(request)
        return completed

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def _try_extract(self) -> Optional[HttpRequest]:
        if self._expected is None:
            separator = self._buffer.find(_CRLFCRLF)
            if separator < 0:
                if len(self._buffer) > self._max_head:
                    raise HttpMessageError(
                        f"request head exceeds {self._max_head} bytes"
                    )
                return None
            head_size = separator + len(_CRLFCRLF)
            declared = self._declared_length(bytes(self._buffer[:head_size]))
            if declared > self._max_body:
                raise HttpMessageError(
                    f"declared body of {declared} bytes exceeds limit"
                )
            self._expected = head_size + declared
        if len(self._buffer) < self._expected:
            return None
        raw = bytes(self._buffer[: self._expected])
        del self._buffer[: self._expected]
        self._expected = None
        request = HttpRequest.decode(raw)
        self.requests_parsed += 1
        return request

    @staticmethod
    def _declared_length(head: bytes) -> int:
        for line in head.split(b"\r\n")[1:]:
            if b":" not in line:
                continue
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    declared = int(value.strip())
                except ValueError as exc:
                    raise HttpMessageError(
                        f"bad Content-Length: {value!r}"
                    ) from exc
                if declared < 0:
                    raise HttpMessageError(f"negative Content-Length {declared}")
                return declared
        return 0

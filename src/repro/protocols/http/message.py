"""HTTP/1.1 request/response encoding and parsing.

HTTP decoys are GET requests whose ``Host`` header carries the experiment
domain; the honey website parses arriving requests with the same code.
The parser is strict about the pieces the pipeline relies on (request
line shape, header syntax, Content-Length framing) and deliberately
tolerant about the rest, mirroring how measurement honeypots behave.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_CRLF = b"\r\n"
_MAX_HEADERS = 128


class HttpMessageError(ValueError):
    """Raised when bytes do not parse as an HTTP/1.1 message."""


def _parse_headers(lines: List[bytes]) -> List[Tuple[str, str]]:
    headers: List[Tuple[str, str]] = []
    for line in lines:
        if b":" not in line:
            raise HttpMessageError(f"header line without colon: {line!r}")
        name, _, value = line.partition(b":")
        if not name or name.strip() != name:
            raise HttpMessageError(f"malformed header name: {name!r}")
        headers.append((name.decode("latin-1"), value.strip().decode("latin-1")))
    if len(headers) > _MAX_HEADERS:
        raise HttpMessageError(f"too many headers ({len(headers)})")
    return headers


def _split_head(data: bytes) -> Tuple[List[bytes], bytes]:
    head, separator, body = data.partition(_CRLF + _CRLF)
    if not separator:
        raise HttpMessageError("message has no header/body separator")
    lines = head.split(_CRLF)
    if not lines or not lines[0]:
        raise HttpMessageError("empty start line")
    return lines, body


@dataclass(frozen=True)
class HttpRequest:
    """An HTTP/1.1 request."""

    method: str
    path: str
    headers: Tuple[Tuple[str, str], ...] = ()
    body: bytes = b""
    version: str = "HTTP/1.1"

    def header(self, name: str) -> Optional[str]:
        """First header value matching ``name`` (case-insensitive)."""
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return None

    @property
    def host(self) -> Optional[str]:
        """The ``Host`` header — where decoys embed the experiment domain."""
        return self.header("host")

    def encode(self) -> bytes:
        if " " in self.method or " " in self.path:
            raise HttpMessageError("method/path must not contain spaces")
        lines = [f"{self.method} {self.path} {self.version}".encode("latin-1")]
        headers = list(self.headers)
        if self.body and self.header("content-length") is None:
            headers.append(("Content-Length", str(len(self.body))))
        lines.extend(f"{name}: {value}".encode("latin-1") for name, value in headers)
        return _CRLF.join(lines) + _CRLF + _CRLF + self.body

    @classmethod
    def decode(cls, data: bytes) -> "HttpRequest":
        lines, body = _split_head(data)
        parts = lines[0].split(b" ")
        if len(parts) != 3:
            raise HttpMessageError(f"bad request line: {lines[0]!r}")
        method, path, version = (part.decode("latin-1") for part in parts)
        if not version.startswith("HTTP/"):
            raise HttpMessageError(f"bad HTTP version: {version!r}")
        headers = _parse_headers(lines[1:])
        request = cls(method=method, path=path,
                      headers=tuple(headers), body=body, version=version)
        declared = request.header("content-length")
        if declared is not None:
            try:
                expected = int(declared)
            except ValueError as exc:
                raise HttpMessageError(f"bad Content-Length: {declared!r}") from exc
            if expected != len(body):
                raise HttpMessageError(
                    f"Content-Length {expected} != body size {len(body)}"
                )
        return request


@dataclass(frozen=True)
class HttpResponse:
    """An HTTP/1.1 response."""

    status: int
    reason: str
    headers: Tuple[Tuple[str, str], ...] = ()
    body: bytes = b""
    version: str = "HTTP/1.1"

    def header(self, name: str) -> Optional[str]:
        wanted = name.lower()
        for key, value in self.headers:
            if key.lower() == wanted:
                return value
        return None

    def encode(self) -> bytes:
        lines = [f"{self.version} {self.status} {self.reason}".encode("latin-1")]
        headers = list(self.headers)
        if self.header("content-length") is None:
            headers.append(("Content-Length", str(len(self.body))))
        lines.extend(f"{name}: {value}".encode("latin-1") for name, value in headers)
        return _CRLF.join(lines) + _CRLF + _CRLF + self.body

    @classmethod
    def decode(cls, data: bytes) -> "HttpResponse":
        lines, body = _split_head(data)
        parts = lines[0].split(b" ", 2)
        if len(parts) < 2:
            raise HttpMessageError(f"bad status line: {lines[0]!r}")
        version = parts[0].decode("latin-1")
        if not version.startswith("HTTP/"):
            raise HttpMessageError(f"bad HTTP version: {version!r}")
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise HttpMessageError(f"bad status code: {parts[1]!r}") from exc
        reason = parts[2].decode("latin-1") if len(parts) == 3 else ""
        return cls(status=status, reason=reason,
                   headers=tuple(_parse_headers(lines[1:])), body=body, version=version)


def make_get(host: str, path: str = "/", user_agent: str = "repro-decoy/1.0") -> HttpRequest:
    """Build the HTTP decoy: a plain GET with the experiment domain as Host."""
    return HttpRequest(
        method="GET",
        path=path,
        headers=(
            ("Host", host),
            ("User-Agent", user_agent),
            ("Accept", "*/*"),
            ("Connection", "close"),
        ),
    )

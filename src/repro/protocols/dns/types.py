"""DNS constants: record types, classes, response codes."""

import enum


class QTYPE(enum.IntEnum):
    """Resource record types used in the experiment."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    ANY = 255


class RCODE(enum.IntEnum):
    """Response codes."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


QCLASS_IN = 1

"""DNS message encoding and decoding.

Implements the RFC 1035 message format: 12-byte header, question section,
and A/NS/CNAME/TXT/SOA resource records, with name compression on encode
(each full name is encoded at most once; later occurrences become
pointers).  This is the codec both decoy generation and the honeypot
authoritative server run on.
"""

import struct
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.net.addr import ip_from_int, ip_to_int
from repro.net.errors import PacketDecodeError
from repro.protocols.dns.names import DnsNameError, decode_name, encode_name, normalize_name
from repro.protocols.dns.types import QCLASS_IN, RCODE, QTYPE

_HEADER_FMT = "!HHHHHH"

FLAG_QR = 0x8000
FLAG_AA = 0x0400
FLAG_TC = 0x0200
FLAG_RD = 0x0100
FLAG_RA = 0x0080


@dataclass(frozen=True)
class DnsHeader:
    """The 12-byte DNS header."""

    txid: int
    flags: int = 0
    qdcount: int = 0
    ancount: int = 0
    nscount: int = 0
    arcount: int = 0

    def __post_init__(self):
        if not 0 <= self.txid <= 0xFFFF:
            raise ValueError(f"transaction id out of range: {self.txid}")

    @property
    def is_response(self) -> bool:
        return bool(self.flags & FLAG_QR)

    @property
    def rcode(self) -> RCODE:
        return RCODE(self.flags & 0x000F)

    @property
    def recursion_desired(self) -> bool:
        return bool(self.flags & FLAG_RD)

    def encode(self) -> bytes:
        return struct.pack(
            _HEADER_FMT, self.txid, self.flags,
            self.qdcount, self.ancount, self.nscount, self.arcount,
        )

    @classmethod
    def decode(cls, data: bytes) -> "DnsHeader":
        if len(data) < 12:
            raise PacketDecodeError(f"DNS header needs 12 bytes, got {len(data)}")
        txid, flags, qdcount, ancount, nscount, arcount = struct.unpack(_HEADER_FMT, data[:12])
        return cls(txid=txid, flags=flags, qdcount=qdcount,
                   ancount=ancount, nscount=nscount, arcount=arcount)


@dataclass(frozen=True)
class DnsQuestion:
    """One entry of the question section."""

    qname: str
    qtype: int = QTYPE.A
    qclass: int = QCLASS_IN

    def __post_init__(self):
        object.__setattr__(self, "qname", normalize_name(self.qname))


@dataclass(frozen=True)
class ResourceRecord:
    """One resource record. ``rdata`` interpretation depends on ``rtype``:

    * A — dotted-quad address string
    * NS/CNAME/PTR — domain name string
    * TXT — arbitrary text
    * SOA — ``"mname rname serial refresh retry expire minimum"``
    """

    name: str
    rtype: int
    ttl: int
    rdata: str
    rclass: int = QCLASS_IN

    def __post_init__(self):
        object.__setattr__(self, "name", normalize_name(self.name))
        # Real TTLs are capped at 2^31-1 (RFC 2181), but the field is a
        # u32 on the wire and the EDNS OPT pseudo-record packs flags into
        # it, so the codec accepts the full range.
        if self.ttl < 0 or self.ttl > 0xFFFFFFFF:
            raise ValueError(f"record TTL out of range: {self.ttl}")


class _NameWriter:
    """Tracks name offsets during message encoding for compression."""

    def __init__(self):
        self.buffer = bytearray()
        self._offsets: Dict[str, int] = {}

    def write(self, raw: bytes) -> None:
        self.buffer.extend(raw)

    def write_name(self, name: str) -> None:
        """Emit ``name``, compressing against any previously-written suffix.

        RFC 1035 4.1.4: a name may end in a pointer to a prior occurrence
        of its tail.  The writer emits leading labels until it finds a
        registered suffix within pointer range (14 bits), then a pointer;
        every newly-written suffix is registered for later names.
        """
        name = normalize_name(name)
        if not name:
            self.buffer.extend(b"\x00")
            return
        labels = name.split(".")
        for index in range(len(labels)):
            suffix = ".".join(labels[index:])
            offset = self._offsets.get(suffix)
            if offset is not None and offset <= 0x3FFF:
                self.buffer.extend(struct.pack("!H", 0xC000 | offset))
                return
            # Register this suffix at the position its first label starts,
            # then emit that label.
            position = len(self.buffer)
            if position <= 0x3FFF:
                self._offsets[suffix] = position
            raw = labels[index].encode("ascii")
            if not raw or len(raw) > 63:
                # Delegate limit errors to the strict encoder.
                encode_name(name)
            self.buffer.append(len(raw))
            self.buffer.extend(raw)
        self.buffer.extend(b"\x00")


def _encode_rdata(writer: _NameWriter, record: ResourceRecord) -> None:
    if record.rtype in (QTYPE.NS, QTYPE.CNAME, QTYPE.PTR):
        # Domain-name rdata may be compressed against earlier names
        # (RFC 1035 permits it for these classic types).  The length field
        # is backpatched once the possibly-pointered name is written.
        encode_name(record.rdata)  # enforce label/name limits up front
        length_position = len(writer.buffer)
        writer.write(b"\x00\x00")
        start = len(writer.buffer)
        writer.write_name(record.rdata)
        rdlength = len(writer.buffer) - start
        writer.buffer[length_position:length_position + 2] = \
            struct.pack("!H", rdlength)
        return
    if record.rtype == QTYPE.A:
        rdata = ip_to_int(record.rdata).to_bytes(4, "big")
    elif record.rtype == QTYPE.TXT:
        raw = record.rdata.encode("utf-8")
        if len(raw) > 255:
            raise DnsNameError("TXT strings longer than 255 bytes are not supported")
        rdata = bytes([len(raw)]) + raw
    elif record.rtype == QTYPE.SOA:
        fields = record.rdata.split()
        if len(fields) != 7:
            raise DnsNameError(f"SOA rdata needs 7 fields, got {record.rdata!r}")
        mname, rname = fields[0], fields[1]
        numbers = [int(value) for value in fields[2:]]
        rdata = encode_name(mname) + encode_name(rname) + struct.pack("!IIIII", *numbers)
    else:
        # Unknown/opaque types (e.g. the EDNS OPT pseudo-record) carry
        # their rdata as a hex string, mirroring the decode fallback.
        try:
            rdata = bytes.fromhex(record.rdata)
        except ValueError as exc:
            raise DnsNameError(
                f"cannot encode rdata for record type {record.rtype}"
            ) from exc
    writer.write(struct.pack("!H", len(rdata)))
    writer.write(rdata)


def _decode_rdata(message: bytes, offset: int, rtype: int, rdlength: int) -> str:
    blob = message[offset : offset + rdlength]
    if rtype == QTYPE.A:
        if rdlength != 4:
            raise PacketDecodeError(f"A record rdata must be 4 bytes, got {rdlength}")
        return ip_from_int(int.from_bytes(blob, "big"))
    if rtype in (QTYPE.NS, QTYPE.CNAME, QTYPE.PTR):
        name, _ = decode_name(message, offset)
        return name
    if rtype == QTYPE.TXT:
        if rdlength < 1 or blob[0] != rdlength - 1:
            raise PacketDecodeError("malformed TXT rdata")
        return blob[1:].decode("utf-8")
    if rtype == QTYPE.SOA:
        mname, cursor = decode_name(message, offset)
        rname, cursor = decode_name(message, cursor)
        numbers = struct.unpack("!IIIII", message[cursor : cursor + 20])
        return " ".join([mname, rname] + [str(value) for value in numbers])
    # Unknown types round-trip as hex so decoding never destroys data.
    return blob.hex()


@dataclass(frozen=True)
class DnsMessage:
    """A complete DNS message."""

    header: DnsHeader
    questions: Tuple[DnsQuestion, ...] = ()
    answers: Tuple[ResourceRecord, ...] = ()
    authorities: Tuple[ResourceRecord, ...] = ()
    additionals: Tuple[ResourceRecord, ...] = ()

    @property
    def qname(self) -> Optional[str]:
        """QNAME of the first question, the field decoys embed data in."""
        return self.questions[0].qname if self.questions else None

    def encode(self) -> bytes:
        header = replace(
            self.header,
            qdcount=len(self.questions),
            ancount=len(self.answers),
            nscount=len(self.authorities),
            arcount=len(self.additionals),
        )
        writer = _NameWriter()
        writer.write(header.encode())
        for question in self.questions:
            writer.write_name(question.qname)
            writer.write(struct.pack("!HH", question.qtype, question.qclass))
        for record in self.answers + self.authorities + self.additionals:
            writer.write_name(record.name)
            writer.write(struct.pack("!HHI", record.rtype, record.rclass, record.ttl))
            _encode_rdata(writer, record)
        return bytes(writer.buffer)

    @classmethod
    def decode(cls, data: bytes) -> "DnsMessage":
        header = DnsHeader.decode(data)
        cursor = 12
        questions: List[DnsQuestion] = []
        for _ in range(header.qdcount):
            try:
                qname, cursor = decode_name(data, cursor)
            except DnsNameError as exc:
                raise PacketDecodeError(f"bad QNAME: {exc}") from exc
            if cursor + 4 > len(data):
                raise PacketDecodeError("truncated question section")
            qtype, qclass = struct.unpack("!HH", data[cursor : cursor + 4])
            cursor += 4
            questions.append(DnsQuestion(qname=qname, qtype=qtype, qclass=qclass))

        def read_records(count: int, cursor: int) -> Tuple[List[ResourceRecord], int]:
            records: List[ResourceRecord] = []
            for _ in range(count):
                try:
                    name, cursor = decode_name(data, cursor)
                except DnsNameError as exc:
                    raise PacketDecodeError(f"bad record name: {exc}") from exc
                if cursor + 10 > len(data):
                    raise PacketDecodeError("truncated resource record")
                rtype, rclass, ttl, rdlength = struct.unpack("!HHIH", data[cursor : cursor + 10])
                cursor += 10
                if cursor + rdlength > len(data):
                    raise PacketDecodeError("resource record rdata runs past message end")
                rdata = _decode_rdata(data, cursor, rtype, rdlength)
                cursor += rdlength
                records.append(
                    ResourceRecord(name=name, rtype=rtype, rclass=rclass, ttl=ttl, rdata=rdata)
                )
            return records, cursor

        answers, cursor = read_records(header.ancount, cursor)
        authorities, cursor = read_records(header.nscount, cursor)
        additionals, cursor = read_records(header.arcount, cursor)
        return cls(
            header=header,
            questions=tuple(questions),
            answers=tuple(answers),
            authorities=tuple(authorities),
            additionals=tuple(additionals),
        )


def make_query(qname: str, txid: int, qtype: int = QTYPE.A,
               recursion_desired: bool = True) -> DnsMessage:
    """Build a standard query — the DNS decoy format."""
    flags = FLAG_RD if recursion_desired else 0
    return DnsMessage(
        header=DnsHeader(txid=txid, flags=flags, qdcount=1),
        questions=(DnsQuestion(qname=qname, qtype=qtype),),
    )


def make_response(query: DnsMessage, answers: Tuple[ResourceRecord, ...] = (),
                  rcode: RCODE = RCODE.NOERROR, authoritative: bool = False) -> DnsMessage:
    """Build the response a server would return for ``query``."""
    if not query.questions:
        raise ValueError("cannot answer a query with no question")
    flags = FLAG_QR | FLAG_RA | int(rcode)
    if query.header.recursion_desired:
        flags |= FLAG_RD
    if authoritative:
        flags |= FLAG_AA
    return DnsMessage(
        header=DnsHeader(txid=query.header.txid, flags=flags),
        questions=query.questions,
        answers=tuple(answers),
    )

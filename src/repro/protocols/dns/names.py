"""Domain-name encoding and decoding, with RFC 1035 compression pointers.

Decoy domains like ``g6d8jjkut5obc4-9982.www.experiment.domain`` ride in
QNAMEs, so the label-length limits here (63 bytes per label, 255 per name)
constrain the identifier codec in :mod:`repro.core.identifier`.
"""

from functools import lru_cache
from typing import Tuple

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255
_POINTER_MASK = 0xC0


class DnsNameError(ValueError):
    """Raised for names that violate RFC 1035 limits or malformed wires."""


def normalize_name(name: str) -> str:
    """Lower-case and strip the trailing dot: the canonical comparison form."""
    return name.rstrip(".").lower()


def is_subdomain_of(name: str, zone: str) -> bool:
    """True when ``name`` equals ``zone`` or sits beneath it.

    >>> is_subdomain_of("a.www.example.com", "example.com")
    True
    """
    name = normalize_name(name)
    zone = normalize_name(zone)
    return name == zone or name.endswith("." + zone)


@lru_cache(maxsize=65536)
def encode_name(name: str) -> bytes:
    """Serialize a domain name as a sequence of length-prefixed labels.

    Compression is applied only on full-message encoding (see
    :meth:`~repro.protocols.dns.message.DnsMessage.encode`), not here.
    Memoized: each decoy domain is encoded once per send but appears in
    queries, responses, and honeypot answers many times over, and
    ``decode_name`` re-encodes every decoded name for its length check.
    """
    name = normalize_name(name)
    if name == "":
        return b"\x00"
    encoded = bytearray()
    for label in name.split("."):
        if not label:
            raise DnsNameError(f"empty label in {name!r}")
        raw = label.encode("ascii", errors="strict")
        if len(raw) > MAX_LABEL_LENGTH:
            raise DnsNameError(f"label {label!r} exceeds {MAX_LABEL_LENGTH} bytes")
        encoded.append(len(raw))
        encoded.extend(raw)
    encoded.append(0)
    if len(encoded) > MAX_NAME_LENGTH:
        raise DnsNameError(f"name {name!r} exceeds {MAX_NAME_LENGTH} wire bytes")
    return bytes(encoded)


def decode_name(message: bytes, offset: int) -> Tuple[str, int]:
    """Decode a possibly-compressed name starting at ``offset``.

    Returns ``(name, next_offset)`` where ``next_offset`` is the position
    after the name *in the original stream* (pointers do not advance it
    past the 2-byte pointer itself).
    """
    labels = []
    jumps = 0
    cursor = offset
    next_offset = None
    while True:
        if cursor >= len(message):
            raise DnsNameError(f"name runs past end of message at offset {cursor}")
        length = message[cursor]
        if length & _POINTER_MASK == _POINTER_MASK:
            if cursor + 1 >= len(message):
                raise DnsNameError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | message[cursor + 1]
            if pointer >= cursor:
                raise DnsNameError(f"forward compression pointer {pointer} at {cursor}")
            if next_offset is None:
                next_offset = cursor + 2
            jumps += 1
            if jumps > 64:
                raise DnsNameError("compression pointer loop")
            cursor = pointer
            continue
        if length & _POINTER_MASK:
            raise DnsNameError(f"reserved label type 0x{length:02x}")
        if length == 0:
            if next_offset is None:
                next_offset = cursor + 1
            break
        if cursor + 1 + length > len(message):
            raise DnsNameError("label runs past end of message")
        labels.append(message[cursor + 1 : cursor + 1 + length].decode("ascii"))
        cursor += 1 + length
    name = ".".join(labels)
    if len(encode_name(name)) > MAX_NAME_LENGTH:
        raise DnsNameError("decoded name exceeds 255 wire bytes")
    return name, next_offset

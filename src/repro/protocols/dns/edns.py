"""EDNS(0) support (RFC 6891).

Modern resolvers attach an OPT pseudo-record to queries; the decoy
generator can do the same so decoys are indistinguishable from ordinary
client traffic at the wire level.  The OPT record abuses the resource-
record layout: NAME is root, CLASS carries the UDP payload size, and TTL
packs extended-rcode/version/flags.
"""

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.protocols.dns.message import DnsMessage, ResourceRecord
from repro.protocols.dns.types import QTYPE

OPT_RTYPE = 41
DEFAULT_UDP_PAYLOAD_SIZE = 1232  # the DNS-flag-day recommendation
FLAG_DO = 0x8000


@dataclass(frozen=True)
class EdnsOptions:
    """Decoded view of an OPT pseudo-record."""

    udp_payload_size: int = DEFAULT_UDP_PAYLOAD_SIZE
    extended_rcode: int = 0
    version: int = 0
    dnssec_ok: bool = False

    def __post_init__(self):
        if not 512 <= self.udp_payload_size <= 0xFFFF:
            raise ValueError(
                f"udp payload size out of range: {self.udp_payload_size}"
            )
        if self.version != 0:
            raise ValueError(f"only EDNS version 0 is supported, got {self.version}")

    def to_record(self) -> ResourceRecord:
        """Encode as the OPT pseudo-record for the additional section."""
        ttl = (self.extended_rcode << 24) | (self.version << 16)
        if self.dnssec_ok:
            ttl |= FLAG_DO
        return ResourceRecord(
            name="",
            rtype=OPT_RTYPE,
            rclass=self.udp_payload_size,
            ttl=ttl,
            rdata="",
        )

    @classmethod
    def from_record(cls, record: ResourceRecord) -> "EdnsOptions":
        if record.rtype != OPT_RTYPE:
            raise ValueError(f"not an OPT record (type {record.rtype})")
        return cls(
            udp_payload_size=record.rclass,
            extended_rcode=(record.ttl >> 24) & 0xFF,
            version=(record.ttl >> 16) & 0xFF,
            dnssec_ok=bool(record.ttl & FLAG_DO),
        )


def with_edns(message: DnsMessage,
              options: Optional[EdnsOptions] = None) -> DnsMessage:
    """Attach an OPT record to a message's additional section."""
    options = options if options is not None else EdnsOptions()
    return DnsMessage(
        header=message.header,
        questions=message.questions,
        answers=message.answers,
        authorities=message.authorities,
        additionals=message.additionals + (options.to_record(),),
    )


def edns_of(message: DnsMessage) -> Optional[EdnsOptions]:
    """The message's EDNS options, if an OPT record is present."""
    for record in message.additionals:
        if record.rtype == OPT_RTYPE:
            return EdnsOptions.from_record(record)
    return None

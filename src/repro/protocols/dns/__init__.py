"""DNS wire-format codec (RFC 1035 subset with name compression)."""

from repro.protocols.dns.message import (
    DnsHeader,
    DnsMessage,
    DnsQuestion,
    ResourceRecord,
    make_query,
    make_response,
)
from repro.protocols.dns.names import (
    DnsNameError,
    decode_name,
    encode_name,
    is_subdomain_of,
    normalize_name,
)
from repro.protocols.dns.types import QCLASS_IN, RCODE, QTYPE

__all__ = [
    "DnsHeader",
    "DnsQuestion",
    "ResourceRecord",
    "DnsMessage",
    "make_query",
    "make_response",
    "encode_name",
    "decode_name",
    "normalize_name",
    "is_subdomain_of",
    "DnsNameError",
    "QTYPE",
    "RCODE",
    "QCLASS_IN",
]

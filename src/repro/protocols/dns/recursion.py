"""Iterative DNS resolution: root → TLD → authoritative.

Appendix E of the paper discusses the resolver-authoritative path: the
leg of a lookup the measurement platform cannot see.  Two properties make
shadowing there unattractive, and both are structural facts of the
resolution chain this module implements:

1. queries on that leg originate from the *resolver's* address, so an
   observer cannot correlate names with client IPs;
2. with QNAME minimization (RFC 9156), upstream servers see only the
   label suffix they are authoritative for — the root sees ``domain``,
   the TLD sees ``experiment.domain``, and only the final authoritative
   server sees the full decoy name.

The chain is exercised standalone by tests and the resolver-authoritative
bias benchmark; the campaign's resolver models keep their direct-to-
authoritative shortcut (the full chain collapses to it for a wildcard
zone one delegation below the TLD).
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.protocols.dns.names import normalize_name


class ResolutionError(Exception):
    """Raised when the chain cannot resolve a name."""


@dataclass(frozen=True)
class Delegation:
    """One zone cut: who is authoritative below this point."""

    zone: str
    server_name: str
    server_address: str


@dataclass(frozen=True)
class UpstreamQuery:
    """One query as seen by an upstream server — the observable the
    resolver-authoritative bias analysis cares about."""

    server_address: str
    server_role: str  # "root" | "tld" | "authoritative"
    qname: str
    source_address: str


class DnsHierarchy:
    """A miniature delegation tree: root, TLDs, and leaf zones.

    ``answers`` maps fully-qualified names (or a wildcard zone) to
    addresses at the leaf.
    """

    def __init__(self, root_address: str = "198.41.0.4"):
        self.root_address = root_address
        self._tlds: Dict[str, Delegation] = {}
        self._zones: Dict[str, Delegation] = {}
        self._wildcards: Dict[str, str] = {}
        self._static: Dict[str, str] = {}

    def add_tld(self, tld: str, server_address: str) -> None:
        tld = normalize_name(tld)
        self._tlds[tld] = Delegation(
            zone=tld, server_name=f"ns.{tld}-servers.example",
            server_address=server_address,
        )

    def add_zone(self, zone: str, server_address: str,
                 wildcard_target: Optional[str] = None) -> None:
        """Delegate ``zone`` to an authoritative server; optionally give it
        a wildcard A record (the experiment-zone configuration)."""
        zone = normalize_name(zone)
        tld = zone.rsplit(".", 1)[-1]
        if tld not in self._tlds:
            raise ResolutionError(f"no TLD {tld!r} registered for zone {zone!r}")
        self._zones[zone] = Delegation(
            zone=zone, server_name=f"ns1.{zone}", server_address=server_address,
        )
        if wildcard_target is not None:
            self._wildcards[zone] = wildcard_target

    def add_static(self, name: str, address: str) -> None:
        self._static[normalize_name(name)] = address

    # -- server-side views -----------------------------------------------

    def tld_for(self, name: str) -> Optional[Delegation]:
        tld = normalize_name(name).rsplit(".", 1)[-1]
        return self._tlds.get(tld)

    def zone_for(self, name: str) -> Optional[Delegation]:
        name = normalize_name(name)
        best: Optional[Delegation] = None
        for zone, delegation in self._zones.items():
            if name == zone or name.endswith("." + zone):
                if best is None or len(zone) > len(best.zone):
                    best = delegation
        return best

    def authoritative_answer(self, name: str) -> Optional[str]:
        name = normalize_name(name)
        if name in self._static:
            return self._static[name]
        delegation = self.zone_for(name)
        if delegation is not None and delegation.zone in self._wildcards:
            return self._wildcards[delegation.zone]
        return None


class IterativeResolver:
    """A recursive resolver performing iterative lookups over a hierarchy.

    ``observer`` (if given) receives every upstream query — this is how
    the bias benchmark inspects what each leg of the chain exposes.
    """

    def __init__(self, hierarchy: DnsHierarchy, egress_address: str,
                 qname_minimization: bool = True,
                 observer: Optional[Callable[[UpstreamQuery], None]] = None):
        self.hierarchy = hierarchy
        self.egress_address = egress_address
        self.qname_minimization = qname_minimization
        self._observer = observer
        self.upstream_queries = 0

    def _emit(self, server_address: str, role: str, qname: str) -> None:
        self.upstream_queries += 1
        if self._observer is not None:
            self._observer(UpstreamQuery(
                server_address=server_address, server_role=role,
                qname=qname, source_address=self.egress_address,
            ))

    @staticmethod
    def _suffix(name: str, labels: int) -> str:
        parts = normalize_name(name).split(".")
        return ".".join(parts[-labels:])

    def resolve(self, name: str) -> str:
        """Resolve ``name`` to an address, walking root → TLD → leaf."""
        name = normalize_name(name)
        if not name or "." not in name:
            raise ResolutionError(f"cannot resolve bare label {name!r}")

        # 1. Ask a root server for the TLD delegation.
        root_qname = self._suffix(name, 1) if self.qname_minimization else name
        self._emit(self.hierarchy.root_address, "root", root_qname)
        tld = self.hierarchy.tld_for(name)
        if tld is None:
            raise ResolutionError(f"root has no delegation for {name!r}")

        # 2. Ask the TLD server for the zone delegation.
        zone = self.hierarchy.zone_for(name)
        if zone is None:
            raise ResolutionError(f"TLD {tld.zone!r} has no delegation under {name!r}")
        labels_to_zone = len(zone.zone.split("."))
        tld_qname = (self._suffix(name, labels_to_zone)
                     if self.qname_minimization else name)
        self._emit(tld.server_address, "tld", tld_qname)

        # 3. Ask the authoritative server the full question.
        self._emit(zone.server_address, "authoritative", name)
        answer = self.hierarchy.authoritative_answer(name)
        if answer is None:
            raise ResolutionError(f"{zone.zone!r} has no answer for {name!r}")
        return answer

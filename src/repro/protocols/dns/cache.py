"""Recursive-resolver cache with optional active refreshing.

Section 5.1 considers — and rules out — "active cache refreshing
mechanisms" as the cause of the re-appearing queries: with the wildcard
record TTL at 3,600 s, refreshing would produce a spike at the one-hour
mark of Figure 4, which the measurement does not show.  This module
implements the mechanism so the ablation benchmark can demonstrate what
that spike *would* look like.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple


@dataclass
class CacheEntry:
    """One cached answer."""

    name: str
    address: str
    stored_at: float
    ttl: float

    def expires_at(self) -> float:
        return self.stored_at + self.ttl

    def is_fresh(self, now: float) -> bool:
        return now < self.expires_at()


class ResolverCache:
    """TTL-honouring answer cache for one recursive resolver."""

    def __init__(self, max_entries: int = 10_000):
        if max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._entries: Dict[str, CacheEntry] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str, now: float) -> Optional[CacheEntry]:
        """Fresh entry for ``name``, or None (expired entries evicted)."""
        entry = self._entries.get(name)
        if entry is None:
            self.misses += 1
            return None
        if not entry.is_fresh(now):
            del self._entries[name]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, name: str, address: str, ttl: float, now: float) -> CacheEntry:
        if ttl <= 0:
            raise ValueError(f"cache TTL must be positive, got {ttl}")
        if len(self._entries) >= self._max_entries and name not in self._entries:
            # Evict the entry expiring soonest — simple and deterministic.
            victim = min(self._entries.values(), key=lambda entry: entry.expires_at())
            del self._entries[victim.name]
        entry = CacheEntry(name=name, address=address, stored_at=now, ttl=ttl)
        self._entries[name] = entry
        return entry

    def entries(self) -> Tuple[CacheEntry, ...]:
        return tuple(self._entries.values())


class RefreshingCache(ResolverCache):
    """A cache that re-fetches entries as their TTL expires.

    ``schedule(delay, action)`` is typically ``Simulator.schedule_in``;
    ``refetch(name)`` performs the upstream query (arriving at the
    experiment's authoritative honeypot as a repeat of the decoy name,
    exactly ``ttl`` seconds after the original — the signature spike).
    ``max_refreshes`` bounds how long an unpopular name is kept warm.
    """

    def __init__(self, schedule: Callable[[float, Callable[[], None]], object],
                 refetch: Callable[[str], None],
                 max_refreshes: int = 2, max_entries: int = 10_000):
        super().__init__(max_entries=max_entries)
        if max_refreshes < 0:
            raise ValueError(f"max_refreshes must be non-negative, got {max_refreshes}")
        self._schedule = schedule
        self._refetch = refetch
        self.max_refreshes = max_refreshes
        self.refreshes_performed = 0

    def put(self, name: str, address: str, ttl: float, now: float,
            _generation: int = 0) -> CacheEntry:
        entry = super().put(name, address, ttl, now)
        if _generation < self.max_refreshes:
            self._schedule(
                ttl,
                lambda name=name, generation=_generation + 1:
                    self._refresh(name, generation),
            )
        return entry

    def _refresh(self, name: str, generation: int) -> None:
        # The entry may have been evicted or replaced meanwhile; the
        # refresh still fires (the upstream fetch is the observable).
        self.refreshes_performed += 1
        self._refetch(name)

"""DNS over HTTPS (RFC 8484 subset).

The paper's discussion recommends encrypted DNS against on-path
observation.  A DoH query is a regular DNS message carried in an HTTP
POST (``application/dns-message``) inside TLS: a wire observer sees only
a TLS session to the resolver's hostname, while the resolver still
decodes the query and sees everything — the destination-collection caveat
applies to DoH exactly as it does to ECH.
"""

from typing import Optional, Tuple

from repro.protocols.dns import DnsMessage
from repro.protocols.http import HttpRequest, HttpResponse

DOH_PATH = "/dns-query"
DOH_CONTENT_TYPE = "application/dns-message"

DOH_RESOLVER_HOST = "doh.resolver-frontend.example"
"""The synthetic DoH frontend every adopting decoy connects to.  A wire
observer of a DoH flow sees a TLS session whose SNI is this constant —
the same name for every query — which is exactly the visibility split
the ciphertext-metadata observers exploit via flow sizes instead."""


class DohError(ValueError):
    """Raised for requests that do not follow the DoH framing."""


def build_doh_request(query: DnsMessage, resolver_host: str) -> HttpRequest:
    """Wrap a DNS query for transport to ``resolver_host`` over HTTPS.

    Note what is — and is not — exposed: the Host header names the
    *resolver*, never the queried domain; the query itself rides in the
    body, which TLS encrypts on the wire.
    """
    return HttpRequest(
        method="POST",
        path=DOH_PATH,
        headers=(
            ("Host", resolver_host),
            ("Content-Type", DOH_CONTENT_TYPE),
            ("Accept", DOH_CONTENT_TYPE),
        ),
        body=query.encode(),
    )


def open_doh_request(request: HttpRequest) -> DnsMessage:
    """Resolver side: unwrap the DNS query from a DoH POST."""
    if request.method != "POST" or request.path != DOH_PATH:
        raise DohError(f"not a DoH request: {request.method} {request.path}")
    if request.header("content-type") != DOH_CONTENT_TYPE:
        raise DohError(f"wrong content type: {request.header('content-type')!r}")
    if not request.body:
        raise DohError("empty DoH body")
    return DnsMessage.decode(request.body)


def build_doh_response(answer: DnsMessage) -> HttpResponse:
    """Wrap a DNS response for the return leg."""
    return HttpResponse(
        status=200,
        reason="OK",
        headers=(("Content-Type", DOH_CONTENT_TYPE),),
        body=answer.encode(),
    )


def open_doh_response(response: HttpResponse) -> DnsMessage:
    """Client side: unwrap the DNS response."""
    if response.status != 200:
        raise DohError(f"DoH resolver returned status {response.status}")
    if response.header("content-type") != DOH_CONTENT_TYPE:
        raise DohError(f"wrong content type: {response.header('content-type')!r}")
    return DnsMessage.decode(response.body)


def wire_visible_name(request: HttpRequest,
                      tls_sni: Optional[str] = None) -> Optional[str]:
    """What an on-path observer of a DoH session can extract.

    With TLS in front (the only deployment mode), the observer sees the
    SNI — the resolver's hostname — and nothing of the query.  This
    helper makes the property explicit for tests and benchmarks.
    """
    return tls_sni

"""TLS Encrypted Client Hello (draft-ietf-tls-esni style, simplified).

The real ECH uses HPKE; what matters to the measurement methodology is the
*visibility split*: the outer ClientHello carries only the provider's
public name, while the true SNI rides inside an opaque extension that
only the key holder can open.  The cipher here is a keyed keystream
derived with SHA-256 — structurally honest (nonce + ciphertext, key
required to open), deliberately not production crypto.
"""

import hashlib
import random
import struct
from dataclasses import dataclass

from repro.protocols.tls.clienthello import ClientHello, TlsDecodeError

ECH_EXTENSION_TYPE = 0xFE0D
_NONCE_LENGTH = 12


@dataclass(frozen=True)
class EchConfig:
    """One provider's ECH configuration, as published in DNS."""

    config_id: int
    public_name: str
    secret: bytes
    """Shared with the terminating provider only."""

    def __post_init__(self):
        if not 0 <= self.config_id <= 255:
            raise ValueError(f"config_id out of range: {self.config_id}")
        if len(self.secret) < 16:
            raise ValueError("ECH secret must be at least 16 bytes")


def _keystream(secret: bytes, nonce: bytes, length: int) -> bytes:
    stream = bytearray()
    counter = 0
    while len(stream) < length:
        block = hashlib.sha256(secret + nonce + struct.pack("!I", counter)).digest()
        stream.extend(block)
        counter += 1
    return bytes(stream[:length])


def encrypt_sni(inner_sni: str, config: EchConfig, rng: random.Random) -> bytes:
    """Seal the true SNI into an ECH extension body."""
    nonce = bytes(rng.randrange(256) for _ in range(_NONCE_LENGTH))
    plaintext = inner_sni.encode("ascii")
    ciphertext = bytes(
        byte ^ key for byte, key in
        zip(plaintext, _keystream(config.secret, nonce, len(plaintext)))
    )
    return struct.pack("!B", config.config_id) + nonce + ciphertext


def decrypt_ech_sni(body: bytes, config: EchConfig) -> str:
    """Open an ECH extension body with the provider's key."""
    if len(body) < 1 + _NONCE_LENGTH:
        raise TlsDecodeError("ECH body too short")
    config_id = body[0]
    if config_id != config.config_id:
        raise TlsDecodeError(
            f"ECH config mismatch: got {config_id}, have {config.config_id}"
        )
    nonce = body[1 : 1 + _NONCE_LENGTH]
    ciphertext = body[1 + _NONCE_LENGTH :]
    plaintext = bytes(
        byte ^ key for byte, key in
        zip(ciphertext, _keystream(config.secret, nonce, len(ciphertext)))
    )
    try:
        return plaintext.decode("ascii")
    except UnicodeDecodeError as exc:
        raise TlsDecodeError("ECH decryption failed (wrong key?)") from exc


def build_ech_client_hello(inner_sni: str, config: EchConfig,
                           rng: random.Random) -> ClientHello:
    """A ClientHello whose visible SNI is the provider's public name.

    On-path observers parsing this hello extract ``config.public_name``
    — never the experiment domain — which is why ECH decoys defeat wire
    sniffers in the mitigation benchmark.
    """
    return ClientHello(
        server_name=config.public_name,
        random=bytes(rng.randrange(256) for _ in range(32)),
        extra_extensions=((ECH_EXTENSION_TYPE, encrypt_sni(inner_sni, config, rng)),),
    )


def outer_sni(hello: ClientHello) -> str:
    """What a wire observer sees: the outer (public) name only."""
    return hello.server_name or ""


def terminate(hello: ClientHello, config: EchConfig) -> str:
    """What the terminating provider sees after opening ECH: the true SNI.

    Demonstrates the paper's caveat — encryption does not mitigate data
    collection *by the destination*, which decrypts and sees everything.
    """
    for ext_type, body in hello.extra_extensions:
        if ext_type == ECH_EXTENSION_TYPE:
            return decrypt_ech_sni(body, config)
    raise TlsDecodeError("no ECH extension present")

"""Mitigations discussed in Section 6 of the paper.

The paper closes with two recommendations:

* **Encrypt the clear-text fields** — TLS 1.3 Encrypted Client Hello hides
  SNI from on-path observers (:mod:`repro.mitigations.ech`).  Encryption
  does *not* stop the destination, which still decrypts and sees
  everything.
* **Split visibility of origin and content** — oblivious relays (OHTTP,
  ODoH) ensure no single party sees both the client address and the query
  name (:mod:`repro.mitigations.odoh`).

Both are implemented against the same substrate as the measurement
pipeline, so their effect on shadowing is directly demonstrable (see
``benchmarks/bench_ext_mitigations.py`` and ``examples/mitigations_demo.py``).
"""

from repro.mitigations.ech import (
    EchConfig,
    build_ech_client_hello,
    decrypt_ech_sni,
    encrypt_sni,
    outer_sni,
)
from repro.mitigations.doh import (
    DohError,
    build_doh_request,
    build_doh_response,
    open_doh_request,
    open_doh_response,
)
from repro.mitigations.odoh import ObliviousDnsProxy, OdohQuery, seal_query, open_query

__all__ = [
    "EchConfig",
    "build_ech_client_hello",
    "encrypt_sni",
    "decrypt_ech_sni",
    "outer_sni",
    "ObliviousDnsProxy",
    "OdohQuery",
    "seal_query",
    "open_query",
    "build_doh_request",
    "open_doh_request",
    "build_doh_response",
    "open_doh_response",
    "DohError",
]

"""Oblivious DNS (RFC 9230 style, simplified).

The privacy goal is a visibility split: the **proxy** sees the client's
address but only a sealed query; the **target resolver** sees the query
name but only the proxy's address.  No single party can correlate *who*
asked with *what* was asked — which is exactly the correlation traffic
shadowing exploits (sniffed QNAMEs enable user tracking).

As with :mod:`repro.mitigations.ech`, sealing uses a keyed SHA-256
keystream: structurally honest, not production HPKE.
"""

import hashlib
import random
import struct
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

_NONCE_LENGTH = 12


class OdohError(ValueError):
    """Raised for malformed or unopenable oblivious queries."""


@dataclass(frozen=True)
class OdohQuery:
    """A sealed query in flight between client, proxy, and target."""

    key_id: int
    nonce: bytes
    ciphertext: bytes

    def encode(self) -> bytes:
        return struct.pack("!B", self.key_id) + self.nonce + self.ciphertext

    @classmethod
    def decode(cls, data: bytes) -> "OdohQuery":
        if len(data) < 1 + _NONCE_LENGTH:
            raise OdohError("sealed query too short")
        return cls(key_id=data[0], nonce=data[1 : 1 + _NONCE_LENGTH],
                   ciphertext=data[1 + _NONCE_LENGTH :])


def _keystream(secret: bytes, nonce: bytes, length: int) -> bytes:
    stream = bytearray()
    counter = 0
    while len(stream) < length:
        stream.extend(hashlib.sha256(secret + nonce + struct.pack("!I", counter)).digest())
        counter += 1
    return bytes(stream[:length])


def seal_query(name: str, key_id: int, target_secret: bytes,
               rng: random.Random) -> OdohQuery:
    """Seal a query name toward the target resolver's key."""
    if not 0 <= key_id <= 255:
        raise OdohError(f"key_id out of range: {key_id}")
    nonce = bytes(rng.randrange(256) for _ in range(_NONCE_LENGTH))
    plaintext = name.encode("ascii")
    ciphertext = bytes(
        byte ^ key for byte, key in
        zip(plaintext, _keystream(target_secret, nonce, len(plaintext)))
    )
    return OdohQuery(key_id=key_id, nonce=nonce, ciphertext=ciphertext)


def open_query(query: OdohQuery, key_id: int, target_secret: bytes) -> str:
    """Open a sealed query at the target resolver."""
    if query.key_id != key_id:
        raise OdohError(f"key mismatch: sealed for {query.key_id}, have {key_id}")
    plaintext = bytes(
        byte ^ key for byte, key in
        zip(query.ciphertext, _keystream(target_secret, query.nonce,
                                         len(query.ciphertext)))
    )
    try:
        return plaintext.decode("ascii")
    except UnicodeDecodeError as exc:
        raise OdohError("query decryption failed (wrong key?)") from exc


@dataclass
class ProxyLogEntry:
    """What the proxy can record: client address, opaque bytes."""

    client_address: str
    sealed_bytes: bytes


@dataclass
class TargetLogEntry:
    """What the target can record: proxy address, clear-text name."""

    proxy_address: str
    name: str


class ObliviousDnsProxy:
    """An oblivious relay between clients and one target resolver.

    ``resolve`` is the target-side callback ``(proxy_address, name) ->
    answer``; the proxy never learns the name, the target never learns
    the client address, and both sides' logs prove it.
    """

    def __init__(self, proxy_address: str, key_id: int, target_secret: bytes,
                 resolve: Callable[[str, str], Optional[str]]):
        self.proxy_address = proxy_address
        self._key_id = key_id
        self._target_secret = target_secret
        self._resolve = resolve
        self.proxy_log: List[ProxyLogEntry] = []
        self.target_log: List[TargetLogEntry] = []

    def relay(self, client_address: str, sealed: OdohQuery) -> Optional[str]:
        """Forward one sealed query and return the answer to the client."""
        self.proxy_log.append(
            ProxyLogEntry(client_address=client_address,
                          sealed_bytes=sealed.encode())
        )
        # Target side: open with the key, resolve, log what it saw.
        name = open_query(sealed, self._key_id, self._target_secret)
        self.target_log.append(
            TargetLogEntry(proxy_address=self.proxy_address, name=name)
        )
        return self._resolve(self.proxy_address, name)

    def correlation_possible(self) -> bool:
        """Can any single log pair a client address with a query name?

        Proxy entries carry addresses but only sealed bytes; target
        entries carry names but only the proxy's own address.  Returns
        True only if that split is somehow violated.
        """
        names = {entry.name.encode("ascii") for entry in self.target_log}
        for entry in self.proxy_log:
            if any(name in entry.sealed_bytes for name in names):
                return True
        return any(entry.proxy_address != self.proxy_address
                   for entry in self.target_log)

"""Metrics: counters, gauges, and fixed-bucket histograms.

The registry is the passive half of the observability layer (spans are
the active half, :mod:`repro.telemetry.spans`).  Its design constraints
come straight from the sharded executor:

* **Determinism.**  Recording a metric never draws randomness, never
  touches the event schedule, and never varies with wall-clock time —
  a campaign with telemetry enabled is byte-identical to one without.
* **Shard-mergeable.**  Each worker process carries its own registry;
  the parent merges snapshots with per-metric policies: counters sum
  (partitioned work), ``merge="same"`` counters assert equality (work
  every shard replays, e.g. vetting), histograms add bucket-wise, and
  gauges take the max.  Summed and bucket-wise metrics therefore merge
  to exactly the serial run's values; gauges (heap depth, etc.) are
  per-process observations and carry no cross-shard guarantee.
* **Near-zero when disabled.**  Components fetch metric handles once at
  construction time; a disabled registry (:data:`NULL_REGISTRY`) hands
  out shared no-op singletons, so the hot-path cost of instrumentation
  is one no-op method call.
"""

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

MERGE_SUM = "sum"
MERGE_SAME = "same"
_COUNTER_MERGES = (MERGE_SUM, MERGE_SAME)


class Counter:
    """A monotonically increasing integer metric.

    ``merge="sum"`` (default) for partitioned work — shard values add up
    to the serial total.  ``merge="same"`` for work every shard replays
    identically (vetting outcomes, plan sizes): merging asserts all
    sources agree and keeps the common value.
    """

    __slots__ = ("name", "merge", "value")

    def __init__(self, name: str, merge: str = MERGE_SUM):
        if merge not in _COUNTER_MERGES:
            raise ValueError(f"unknown counter merge policy {merge!r}")
        self.name = name
        self.merge = merge
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A high-water-mark observation (merge policy: max).

    Gauges describe one process's local state (e.g. peak event-heap
    depth), so a merged gauge is the max over shards — deliberately
    *not* required to equal the serial run, where one heap holds every
    shard's events at once.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def record(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram: ``len(bounds) + 1`` counts.

    ``counts[i]`` tallies observations ``<= bounds[i]``; the final
    bucket is the overflow.  Fixed bounds make the merge trivial and
    deterministic: bucket-wise addition, with a hard error on bound
    mismatch.
    """

    __slots__ = ("name", "bounds", "counts")

    def __init__(self, name: str, bounds: Sequence[float]):
        ordered = tuple(float(bound) for bound in bounds)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram bounds must be non-empty and strictly increasing, "
                f"got {bounds!r}"
            )
        self.name = name
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)


class _NullCounter:
    __slots__ = ()
    name = ""
    merge = MERGE_SUM
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def record(self, value: float) -> None:
        pass

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    bounds: Tuple[float, ...] = ()
    counts: List[int] = []
    total = 0

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create store of named metrics with deterministic snapshots."""

    enabled = True

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- handles ---------------------------------------------------------

    def counter(self, name: str, merge: str = MERGE_SUM) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name, merge=merge)
        elif counter.merge != merge:
            raise ValueError(
                f"counter {name!r} already registered with merge="
                f"{counter.merge!r}, requested {merge!r}"
            )
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        elif histogram.bounds != tuple(float(bound) for bound in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{histogram.bounds!r}, requested {tuple(bounds)!r}"
            )
        return histogram

    # -- views -----------------------------------------------------------

    def counter_values(self) -> Dict[str, int]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def gauge_values(self) -> Dict[str, float]:
        return {name: g.value for name, g in sorted(self._gauges.items())}

    def histogram_values(self) -> Dict[str, List[int]]:
        return {name: list(h.counts)
                for name, h in sorted(self._histograms.items())}

    # -- snapshots and merge ---------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """A plain-dict, key-sorted image — picklable, JSON-ready."""
        return {
            "counters": {
                name: {"value": counter.value, "merge": counter.merge}
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {"bounds": list(histogram.bounds),
                       "counts": list(histogram.counts)}
                for name, histogram in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_snapshot(cls, data: Dict[str, dict]) -> "MetricsRegistry":
        registry = cls()
        for name, entry in data.get("counters", {}).items():
            registry.counter(name, merge=entry.get("merge", MERGE_SUM)).inc(
                entry["value"]
            )
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, entry in data.get("histograms", {}).items():
            histogram = registry.histogram(name, entry["bounds"])
            histogram.counts = [
                a + b for a, b in zip(histogram.counts, entry["counts"])
            ]
        return registry

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry in under the per-metric merge policies."""
        for name, theirs in other._counters.items():
            ours = self.counter(name, merge=theirs.merge)
            if ours.merge == MERGE_SAME:
                if ours.value and theirs.value and ours.value != theirs.value:
                    raise ValueError(
                        f"merge='same' counter {name!r} disagrees across "
                        f"sources: {ours.value} != {theirs.value}"
                    )
                ours.value = max(ours.value, theirs.value)
            else:
                ours.value += theirs.value
        for name, theirs in other._gauges.items():
            self.gauge(name).record(theirs.value)
        for name, theirs in other._histograms.items():
            ours = self.histogram(name, theirs.bounds)
            ours.counts = [a + b for a, b in zip(ours.counts, theirs.counts)]

    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        merged = cls()
        for registry in registries:
            merged.merge_from(registry)
        return merged


class NullRegistry:
    """Disabled backend: every handle is a shared no-op singleton.

    Keeps instrumented code branch-free — components call
    ``metrics.counter(...)`` unconditionally and pay one no-op method
    call per recording when telemetry is off.
    """

    enabled = False

    def counter(self, name: str, merge: str = MERGE_SUM) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, bounds: Sequence[float]) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def counter_values(self) -> Dict[str, int]:
        return {}

    def gauge_values(self) -> Dict[str, float]:
        return {}

    def histogram_values(self) -> Dict[str, List[int]]:
        return {}

    def snapshot(self) -> Dict[str, dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}


NULL_REGISTRY = NullRegistry()


def registry_for(enabled: bool):
    """The standard way components obtain a backend from a config flag."""
    return MetricsRegistry() if enabled else NULL_REGISTRY


def labeled(name: str, **labels: object) -> str:
    """Canonical ``name[k=v,...]`` metric naming, keys sorted.

    >>> labeled("campaign.decoys_sent", protocol="dns", phase=1)
    'campaign.decoys_sent[phase=1,protocol=dns]'
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}[{inner}]"

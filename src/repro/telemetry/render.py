"""Human-readable rendering of a telemetry capture.

Backs the ``repro telemetry <file>`` CLI subcommand.  Everything goes
through :func:`repro.analysis.report.render_table` so telemetry output
matches the look of every other table the package prints.
"""

from typing import List

from repro.telemetry.export import RunTelemetry
from repro.telemetry.spans import PARENT_SHARD, Span


def _render_table(headers, rows, title):
    # Imported lazily: repro.analysis pulls in the core pipeline, which
    # itself depends on repro.telemetry — a module-level import would be
    # circular.
    from repro.analysis.report import render_table
    return render_table(headers, rows, title=title)


def _shard_label(shard: int) -> str:
    return "parent" if shard == PARENT_SHARD else str(shard)


def render_spans(spans: List[Span], title: str = "Stage spans") -> str:
    rows = [
        (span.name, _shard_label(span.shard), f"{span.wall_seconds:.3f}",
         f"{span.virtual_start:.0f}", f"{span.virtual_end:.0f}",
         f"{span.virtual_seconds:.0f}")
        for span in spans
    ]
    return _render_table(
        ("stage", "shard", "wall s", "virt start", "virt end", "virt span"),
        rows, title)


def render_profile(spans: List[Span],
                   title: str = "Stage profile (cumulative wall time)") -> str:
    """Per-stage cumulative time across all shards — the ``--profile`` view.

    Aggregates repeated spans (the supervisor opens ``phase2`` and
    ``merge_interim`` twice to bracket the overlapped dispatch) and all
    shards' copies of a stage into one row, so the output answers "where
    did the run spend its time" rather than listing every span.  Shares
    are of summed wall time: with N workers overlapping, they measure
    work, not elapsed time.
    """
    totals = {}
    for span in spans:
        stage = totals.setdefault(span.name, [0.0, 0, set()])
        stage[0] += span.wall_seconds
        stage[1] += 1
        stage[2].add(span.shard)
    grand_total = sum(wall for wall, _, _ in totals.values()) or 1.0
    rows = [
        (name, str(count), str(len(shards)), f"{wall:.3f}",
         f"{100.0 * wall / grand_total:.1f}%")
        for name, (wall, count, shards) in sorted(
            totals.items(), key=lambda item: -item[1][0])
    ]
    return _render_table(
        ("stage", "spans", "shards", "cum wall s", "share"), rows, title)


def render_telemetry(telemetry: RunTelemetry) -> str:
    """All tables: run metadata, counters, gauges, histograms, spans."""
    sections = []

    if telemetry.meta:
        sections.append(_render_table(
            ("key", "value"),
            sorted((key, value) for key, value in telemetry.meta.items()),
            "Run"))

    counters = telemetry.metrics.counter_values()
    if counters:
        sections.append(_render_table(
            ("counter", "value"), sorted(counters.items()),
            "Counters"))

    gauges = telemetry.metrics.gauge_values()
    if gauges:
        sections.append(_render_table(
            ("gauge", "value"),
            [(name, f"{value:g}") for name, value in sorted(gauges.items())],
            "Gauges (per-process max)"))

    histograms = telemetry.metrics.histogram_values()
    if histograms:
        rows = []
        snapshot = telemetry.metrics.snapshot()["histograms"]
        for name in sorted(histograms):
            bounds = snapshot[name]["bounds"]
            counts = snapshot[name]["counts"]
            for bound, count in zip(bounds, counts):
                rows.append((name, f"<= {bound:g}", count))
            rows.append((name, f"> {bounds[-1]:g}", counts[-1]))
        sections.append(_render_table(
            ("histogram", "bucket", "count"), rows, "Histograms"))

    if telemetry.spans:
        sections.append(render_spans(telemetry.spans))

    if not sections:
        return "telemetry capture is empty (was the run made with telemetry enabled?)"
    return "\n\n".join(sections)

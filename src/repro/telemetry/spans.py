"""Stage spans: wall-clock *and* virtual-clock timing per pipeline stage.

A span records how long a named stage took in real time and which slice
of simulated time it covered.  Spans are observations about *this
process* (wall clock is inherently per-host), so the cross-shard merge
is a concatenation ordered by a stable key — never a sum, and never part
of the determinism contract the way counters and histograms are.

``ExperimentResult.timings`` is derived from these spans (see
:func:`timings_from_spans`), which keeps the historical 4-key dict alive
for analysis/bench consumers while the spans carry the richer story.
"""

import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Iterable, List, Optional

PARENT_SHARD = -1
"""``Span.shard`` value for the parent process (or a serial run)."""


@dataclass(frozen=True)
class Span:
    """One completed stage timing."""

    name: str
    wall_seconds: float
    virtual_start: float
    virtual_end: float
    shard: int = PARENT_SHARD

    @property
    def virtual_seconds(self) -> float:
        return self.virtual_end - self.virtual_start

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        return cls(
            name=str(data["name"]),
            wall_seconds=float(data["wall_seconds"]),
            virtual_start=float(data["virtual_start"]),
            virtual_end=float(data["virtual_end"]),
            shard=int(data.get("shard", PARENT_SHARD)),
        )


class SpanTracer:
    """Collects spans for one process.

    ``virtual_now`` is the simulator clock read; it may be attached
    after construction (the "build" stage runs before a simulator
    exists) and defaults to a constant 0.0 until then.
    """

    def __init__(self, virtual_now: Optional[Callable[[], float]] = None,
                 shard: int = PARENT_SHARD):
        self.virtual_now = virtual_now
        self.shard = shard
        self.spans: List[Span] = []

    def _virtual(self) -> float:
        return self.virtual_now() if self.virtual_now is not None else 0.0

    @contextmanager
    def span(self, name: str):
        """Record one stage; re-raises, but still records, on error."""
        wall_start = time.perf_counter()
        virtual_start = self._virtual()
        try:
            yield
        finally:
            self.spans.append(Span(
                name=name,
                wall_seconds=time.perf_counter() - wall_start,
                virtual_start=virtual_start,
                virtual_end=self._virtual(),
                shard=self.shard,
            ))

    def add(self, span: Span) -> None:
        self.spans.append(span)


def merge_spans(span_groups: Iterable[Iterable[Span]]) -> List[Span]:
    """Concatenate span groups under a stable total order.

    Sorted by (name, shard, position) so the merged sequence depends
    only on the inputs — not on worker completion order.
    """
    keyed = [
        ((span.name, span.shard, position), span)
        for spans in span_groups
        for position, span in enumerate(spans)
    ]
    return [span for _, span in sorted(keyed, key=lambda pair: pair[0])]


def timings_from_spans(spans: Iterable[Span],
                       shard: int = PARENT_SHARD) -> Dict[str, float]:
    """The legacy ``timings`` dict: stage name -> wall seconds.

    Only the given shard's spans contribute (the serial runner and the
    sharded parent both use :data:`PARENT_SHARD`); repeated stage names
    accumulate.
    """
    timings: Dict[str, float] = {}
    for span in spans:
        if span.shard == shard:
            timings[span.name] = timings.get(span.name, 0.0) + span.wall_seconds
    return timings

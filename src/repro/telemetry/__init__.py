"""repro.telemetry — metrics, spans, and shard-mergeable run instrumentation.

The observability layer of the pipeline (see docs/OBSERVABILITY.md):

* :mod:`repro.telemetry.registry` — counters / gauges / fixed-bucket
  histograms with deterministic snapshots and per-metric merge policies,
  plus the no-op backend that makes disabled telemetry near-free;
* :mod:`repro.telemetry.spans` — wall- and virtual-clock stage spans;
* :mod:`repro.telemetry.export` — :class:`RunTelemetry` and the
  ``telemetry.json`` / ``spans.jsonl`` on-disk format;
* :mod:`repro.telemetry.render` — the tables behind ``repro telemetry``.

The invariant everything here is built around: recording telemetry never
draws randomness and never touches the event schedule, so a campaign
with telemetry on is byte-identical to one without — and a 4-worker run
merges to the same counters and histograms as the serial run.
"""

from repro.telemetry.export import (
    RunTelemetry,
    load_telemetry,
    write_telemetry,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MERGE_SAME,
    MERGE_SUM,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    labeled,
    registry_for,
)
from repro.telemetry.render import render_telemetry
from repro.telemetry.spans import (
    PARENT_SHARD,
    Span,
    SpanTracer,
    merge_spans,
    timings_from_spans,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MERGE_SAME",
    "MERGE_SUM",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "PARENT_SHARD",
    "RunTelemetry",
    "Span",
    "SpanTracer",
    "labeled",
    "load_telemetry",
    "merge_spans",
    "registry_for",
    "render_telemetry",
    "timings_from_spans",
    "write_telemetry",
]

"""Run-level telemetry container and its on-disk format.

One :class:`RunTelemetry` travels on every :class:`~repro.core.
experiment.ExperimentResult`.  ``repro run --telemetry DIR`` writes it
as two files:

* ``telemetry.json`` — metadata + the merged metrics snapshot + span
  summaries, one self-contained JSON document;
* ``spans.jsonl`` — one span per line, convenient for streaming tools.

``repro telemetry <file>`` renders either back into tables
(:mod:`repro.telemetry.render`).
"""

import json
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.telemetry.registry import MetricsRegistry, NULL_REGISTRY
from repro.telemetry.spans import Span

TELEMETRY_FILENAME = "telemetry.json"
SPANS_FILENAME = "spans.jsonl"


@dataclass
class RunTelemetry:
    """Everything one run's instrumentation produced."""

    metrics: object = NULL_REGISTRY
    """A :class:`MetricsRegistry` (or the null backend when disabled)."""
    spans: List[Span] = field(default_factory=list)
    enabled: bool = False
    meta: Dict[str, object] = field(default_factory=dict)
    """Run identity: seed, workers, config class — whatever the caller
    wants alongside the numbers."""

    def to_dict(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "meta": dict(self.meta),
            "metrics": self.metrics.snapshot(),
            "spans": [span.to_dict() for span in self.spans],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunTelemetry":
        return cls(
            metrics=MetricsRegistry.from_snapshot(data.get("metrics", {})),
            spans=[Span.from_dict(entry) for entry in data.get("spans", [])],
            enabled=bool(data.get("enabled", False)),
            meta=dict(data.get("meta", {})),
        )


def write_telemetry(telemetry: RunTelemetry,
                    directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write ``telemetry.json`` + ``spans.jsonl`` under ``directory``."""
    out = pathlib.Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    document = telemetry.to_dict()
    (out / TELEMETRY_FILENAME).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    with (out / SPANS_FILENAME).open("w") as stream:
        for span in telemetry.spans:
            stream.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return out / TELEMETRY_FILENAME


def load_telemetry(path: Union[str, pathlib.Path]) -> RunTelemetry:
    """Load telemetry from a directory, ``telemetry.json``, or a spans file."""
    target = pathlib.Path(path)
    if target.is_dir():
        target = target / TELEMETRY_FILENAME
    if not target.exists():
        raise FileNotFoundError(f"no telemetry file at {target}")
    if target.suffix == ".jsonl":
        spans = [
            Span.from_dict(json.loads(line))
            for line in target.read_text().splitlines()
            if line.strip()
        ]
        return RunTelemetry(spans=spans, enabled=True)
    return RunTelemetry.from_dict(json.loads(target.read_text()))

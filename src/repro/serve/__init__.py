"""Always-on measurement service: live ingest, incremental analysis,
cached report API.

The batch CLI (``repro run`` / ``repro report``) reproduces the paper's
offline workflow; this package turns the same pipeline into a product.
A long-running daemon (``repro serve``) tails honeypot log records as
they arrive — over a local socket feed speaking the
:mod:`repro.core.wire` codec, or from an in-process
:class:`~repro.honeypot.logstore.LogStore` tail cursor — folds each
record incrementally into per-campaign analysis accumulators with zero
re-scans, checkpoints continuously at record-count/wall-clock
watermarks, and serves versioned report artifacts plus telemetry over a
small threaded HTTP API.  See docs/SERVICE.md.

Layer map:

* :mod:`repro.serve.session`  — one campaign's incremental state
  (ledger, correlator, analysis accumulators, report cache);
* :mod:`repro.serve.service`  — the multi-tenant session registry with
  watermark checkpointing and structured errors;
* :mod:`repro.serve.feed`     — record-feed framing, socket server and
  client, bundle replay;
* :mod:`repro.serve.httpapi`  — the JSON/text report API;
* :mod:`repro.serve.daemon`   — wiring + signal handling behind the
  ``repro serve`` subcommand.
"""

from repro.serve.feed import (
    FeedClient,
    FeedError,
    FeedServer,
    context_from_result,
    feed_batches_from_bundle,
    feed_batches_from_result,
)
from repro.serve.httpapi import ReportApiServer
from repro.serve.service import (
    MeasurementService,
    ServeError,
    UnknownCampaignError,
    WatermarkPolicy,
)
from repro.serve.session import CampaignSession, ReportCache

__all__ = [
    "CampaignSession",
    "FeedClient",
    "FeedError",
    "FeedServer",
    "MeasurementService",
    "ReportApiServer",
    "ReportCache",
    "ServeError",
    "UnknownCampaignError",
    "WatermarkPolicy",
    "context_from_result",
    "feed_batches_from_bundle",
    "feed_batches_from_result",
]

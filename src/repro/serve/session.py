"""One campaign's live state: ledger, correlator, accumulators, cache.

A :class:`CampaignSession` is the serve-side mirror of what
:mod:`repro.core.campaign` does at batch time — the feeding contract is
identical (``observe_decoy`` per registered decoy, ``observe_event`` per
Phase I unsolicited request, ``observe_location`` per Phase II verdict,
``set_log_entries`` with the total log length), so after N ingested
records ``state.digest()`` equals the batch digest over the same N and
the rendered report is byte-identical.  Everything mutable is guarded by
one re-entrant lock; readers (report/telemetry endpoints) take the same
lock, so a report never observes a half-applied batch.

Report renders are cached keyed by the accumulator digest.  The digest
itself is also cached behind a dirty flag flipped on ingest — so a read
of an unchanged session is two dict lookups, never a re-hash and never
a re-render.
"""

import threading
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro.analysis.paperreport import full_report_from_state
from repro.analysis.streaming import AnalysisState
from repro.core.correlate import DecoyLedger, IncrementalCorrelator
from repro.core.wire import FeedBatch, ServeCampaignState, encode_serve_state
from repro.intel.blocklist import Blocklist
from repro.intel.directory import IpDirectory
from repro.telemetry.registry import NULL_REGISTRY, labeled

REPORT_TITLE = "Traffic shadowing measurement report"
"""Default title for live-served reports — deliberately the
:func:`full_report_from_state` default, so the daemon's text artifact
byte-matches ``repro report --title`` over the same records."""


class ReportCache:
    """Digest-keyed render cache with a monotonically versioned artifact.

    One entry suffices: the session only ever renders its *current*
    state, and a new digest invalidates the old artifact.  ``version``
    counts distinct renders since session start, so API consumers can
    cheaply detect "the report changed" without diffing text.
    """

    def __init__(self, metrics=None, campaign_id: str = ""):
        self._digest: Optional[str] = None
        self._text: Optional[str] = None
        self.version = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_hits = metrics.counter(
            labeled("serve.report.cache_hits", campaign=campaign_id))
        self._m_misses = metrics.counter(
            labeled("serve.report.cache_misses", campaign=campaign_id))
        self.hits = 0
        self.misses = 0

    def get(self, digest: str, render) -> Tuple[str, int]:
        """(report text, version) — calling ``render()`` only on miss."""
        if digest == self._digest:
            self.hits += 1
            self._m_hits.inc()
            return self._text, self.version
        text = render()
        self._digest = digest
        self._text = text
        self.version += 1
        self.misses += 1
        self._m_misses.inc()
        return text, self.version

    def current(self, digest: str) -> bool:
        """True when the cached artifact was rendered from ``digest``."""
        return digest == self._digest

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CampaignSession:
    """Incremental analysis for one campaign behind one lock."""

    def __init__(self, campaign_id: str, zone: str, directory: IpDirectory,
                 blocklist: Blocklist, metrics=None,
                 report_title: str = REPORT_TITLE):
        self.campaign_id = campaign_id
        self.zone = zone
        self.report_title = report_title
        self.ledger = DecoyLedger()
        self._directory = directory
        self._blocklist = blocklist
        self.state = AnalysisState(directory=directory, blocklist=blocklist)
        self.correlator = IncrementalCorrelator(self.ledger, zone)
        self.lock = threading.RLock()
        self.seq = 0
        """High-water applied batch sequence (registration is seq 0)."""
        self.log_records = 0
        self.location_count = 0
        self._dirty = True
        self._digest: Optional[str] = None
        self._cache = ReportCache(metrics=metrics, campaign_id=campaign_id)
        self.ingest_seconds = 0.0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_batches = metrics.counter(
            labeled("serve.ingest.batches", campaign=campaign_id))
        self._m_records = metrics.counter(
            labeled("serve.ingest.log_records", campaign=campaign_id))
        self._m_duplicates = metrics.counter(
            labeled("serve.ingest.duplicate_batches", campaign=campaign_id))
        self._m_events = metrics.counter(
            labeled("serve.ingest.events", campaign=campaign_id))

    # -- construction ------------------------------------------------------

    @classmethod
    def from_context(cls, campaign_id: str, context: dict,
                     metrics=None) -> "CampaignSession":
        """Build a fresh session from registration context (the
        ``context`` dict of a registration :class:`FeedBatch`): zone,
        IP-directory rows, and blocklist addresses."""
        directory = IpDirectory()
        for row in context.get("directory", ()):
            directory.register(address=row["address"], asn=row["asn"],
                               country=row["country"], role=row["role"])
        blocklist = Blocklist()
        for address in context.get("blocklist", ()):
            blocklist.add(address)
        return cls(campaign_id, context["zone"], directory, blocklist,
                   metrics=metrics)

    @classmethod
    def restore(cls, registration: FeedBatch, state: ServeCampaignState,
                metrics=None) -> "CampaignSession":
        """Rebuild a session from its checkpoint pair.

        The restored session keeps ingesting and serving exactly where
        the killed one left off: ledger records re-register (without
        re-observing — the analysis snapshot already contains them),
        the correlator resumes its classification state, and the
        accumulators restore *with* the intel handles rebuilt from the
        registration context, so they can keep observing new events.
        """
        session = cls.from_context(state.campaign_id,
                                   registration.context, metrics=metrics)
        for record in state.records:
            session.ledger.register(record)
        session.state = AnalysisState.from_snapshot(
            state.analysis, directory=session._directory,
            blocklist=session._blocklist)
        session.correlator = IncrementalCorrelator.from_state_snapshot(
            state.correlator, session.ledger, session.zone)
        session.seq = state.seq
        session.log_records = state.log_records
        session.location_count = state.location_count
        return session

    # -- ingest ------------------------------------------------------------

    def ingest_batch(self, batch: FeedBatch) -> dict:
        """Fold one feed batch in; idempotent on ``seq``.

        A batch at or below the high-water mark is acknowledged without
        effect — that is what makes at-least-once feed delivery (resend
        after a daemon restart) safe.  Within a batch, decoys apply
        before log entries, so an entry never references an unregistered
        decoy of the same batch.
        """
        with self.lock:
            if batch.seq <= self.seq:
                self._m_duplicates.inc()
                return self._ack(applied=False)
            started = perf_counter()
            events_before = self.correlator.event_count
            for record in batch.records:
                self.ledger.register(record)
                self.state.observe_decoy(record)
            for entry in batch.log_entries:
                self.log_records += 1
                event = self.correlator.ingest(entry)
                if event is not None and event.decoy.phase == 1:
                    self.state.observe_event(event)
            for location in batch.locations:
                self.location_count += 1
                self.state.observe_location(location)
            self.state.set_log_entries(self.log_records)
            self.seq = batch.seq
            self._dirty = True
            self.ingest_seconds += perf_counter() - started
            self._m_batches.inc()
            self._m_records.inc(len(batch.log_entries))
            self._m_events.inc(self.correlator.event_count - events_before)
            return self._ack(applied=True)

    def _ack(self, applied: bool) -> dict:
        return {
            "campaign": self.campaign_id,
            "seq": self.seq,
            "applied": applied,
            "log_records": self.log_records,
            "events": self.correlator.event_count,
        }

    # -- reads -------------------------------------------------------------

    def digest(self) -> str:
        """The accumulator digest, re-hashed only after an ingest."""
        with self.lock:
            if self._dirty:
                self._digest = self.state.digest()
                self._dirty = False
            return self._digest

    def report(self) -> Tuple[str, str, int]:
        """(text, digest, version) — rendered only when the digest moved."""
        with self.lock:
            digest = self.digest()
            text, version = self._cache.get(
                digest,
                lambda: full_report_from_state(self.state,
                                               title=self.report_title))
            return text, digest, version

    def version_info(self) -> dict:
        """The report's change-detection handle, without rendering.

        ``digest`` identifies the accumulator state; ``version`` is the
        last *rendered* artifact's counter and ``current`` says whether
        that artifact still matches the digest.  A poller can watch this
        endpoint (two dict lookups per call on an idle session) and
        fetch the full report only when the digest moves.
        """
        with self.lock:
            digest = self.digest()
            return {
                "campaign": self.campaign_id,
                "seq": self.seq,
                "digest": digest,
                "version": self._cache.version,
                "current": self._cache.current(digest),
            }

    def telemetry(self) -> dict:
        with self.lock:
            rate = (self.log_records / self.ingest_seconds
                    if self.ingest_seconds > 0 else 0.0)
            return {
                "campaign": self.campaign_id,
                "seq": self.seq,
                "decoys": len(self.ledger),
                "log_records": self.log_records,
                "locations": self.location_count,
                "events": self.correlator.event_count,
                "initial_arrivals": self.correlator.initial_count,
                "unknown_domains": self.correlator.unknown_count,
                "ingest": {
                    "seconds": self.ingest_seconds,
                    "records_per_second": rate,
                },
                "report": {
                    "version": self._cache.version,
                    "cache_hits": self._cache.hits,
                    "cache_misses": self._cache.misses,
                    "cache_hit_ratio": self._cache.hit_ratio,
                },
            }

    def summary(self) -> dict:
        with self.lock:
            return {
                "campaign": self.campaign_id,
                "seq": self.seq,
                "decoys": len(self.ledger),
                "log_records": self.log_records,
                "events": self.correlator.event_count,
                "digest": self.digest(),
            }

    # -- checkpointing -----------------------------------------------------

    def state_blob(self) -> bytes:
        """The campaign's current :class:`ServeCampaignState` as a wire
        blob, consistent under the session lock."""
        with self.lock:
            return encode_serve_state(ServeCampaignState(
                campaign_id=self.campaign_id,
                seq=self.seq,
                log_records=self.log_records,
                location_count=self.location_count,
                records=self.ledger.records(),
                correlator=self.correlator.state_snapshot(),
                analysis=self.state.snapshot(),
            ))

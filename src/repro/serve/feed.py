"""The live record feed: framing, socket transport, and replay sources.

Feeders push :class:`~repro.core.wire.FeedBatch` blobs to the daemon
over a local TCP socket.  Frames are 4-byte big-endian length prefixes
followed by the wire blob (requests) or a UTF-8 JSON document (acks) —
the blob itself already carries magic, version, and CRC, so the frame
adds nothing but a read boundary.

Delivery is at-least-once: every batch carries a per-campaign sequence
number, sessions skip anything at or below their high-water mark, and
the ack echoes the applied high-water — so a feeder that reconnects
after a daemon restart simply resends from its last acknowledged batch
and the duplicates are absorbed (see docs/SERVICE.md).

Replay sources turn an in-memory :class:`ExperimentResult` or an
exported bundle directory into a registration batch plus time-ordered
data batches.  The merge order matters: decoy registrations interleave
with log entries by simulated time, decoys first on ties, so no log
entry ever reaches the correlator before the decoy it references —
the invariant that lets the incremental resolver cache "noise" verdicts
permanently.
"""

import dataclasses
import json
import socket
import struct
import threading
from typing import Iterator, List, Optional

from repro.core.wire import FeedBatch, WireError, decode_feed_batch, encode_feed_batch
from repro.serve.service import MeasurementService, ServeError

_FRAME_HEADER = struct.Struct(">I")
MAX_FRAME = 64 * 1024 * 1024
"""Upper bound on one frame — far above any sane batch, low enough that
a corrupt length prefix cannot trigger a multi-gigabyte allocation."""

DEFAULT_BATCH_SIZE = 500


class FeedError(RuntimeError):
    """Transport-level feed failure (framing, socket, oversized frame)."""


# -- framing ---------------------------------------------------------------

def send_frame(sock: socket.socket, payload: bytes) -> None:
    if len(payload) > MAX_FRAME:
        raise FeedError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME}")
    sock.sendall(_FRAME_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[bytes]:
    """One frame payload, or ``None`` on orderly EOF at a boundary."""
    header = _recv_exact(sock, _FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FeedError(f"incoming frame claims {length} bytes "
                        f"(max {MAX_FRAME}); stream corrupt?")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FeedError("connection closed mid-frame")
    return payload


# -- server ----------------------------------------------------------------

class FeedServer:
    """Threaded TCP acceptor feeding a :class:`MeasurementService`.

    One thread per connection; each decoded batch goes straight to
    ``service.ingest`` and the resulting ack (or a structured error
    payload) is framed back.  Errors never kill the daemon: a
    :class:`~repro.serve.service.ServeError` is reported and the
    connection stays open (the feeder may switch campaigns); a wire
    decode failure is reported and the connection dropped (the stream
    can no longer be trusted).
    """

    def __init__(self, service: MeasurementService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(8)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    def start(self) -> None:
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-feed-accept", daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            threading.Thread(target=self._serve_connection, args=(conn,),
                             name="repro-feed-conn", daemon=True).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while True:
                try:
                    blob = recv_frame(conn)
                except (FeedError, OSError):
                    return
                if blob is None:
                    return
                try:
                    batch = decode_feed_batch(blob)
                except WireError as exc:
                    self._reply(conn, {"error": {
                        "code": "wire_error", "message": str(exc)}})
                    return
                try:
                    ack = self.service.ingest(batch)
                except ServeError as exc:
                    ack = exc.to_payload()
                if not self._reply(conn, ack):
                    return

    @staticmethod
    def _reply(conn: socket.socket, payload: dict) -> bool:
        try:
            send_frame(conn, json.dumps(payload, sort_keys=True).encode())
            return True
        except OSError:
            return False

    def stop(self) -> None:
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)


# -- client ----------------------------------------------------------------

class FeedClient:
    """Blocking feed connection: ``send`` one batch, get one ack."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)

    def send(self, batch: FeedBatch) -> dict:
        """Ship one batch; returns the ack dict.

        A structured service error comes back as ``{"error": {...}}`` —
        raised here as :class:`FeedError` so feeders fail loudly instead
        of silently dropping records.
        """
        send_frame(self._sock, encode_feed_batch(batch))
        reply = recv_frame(self._sock)
        if reply is None:
            raise FeedError("feed connection closed before ack")
        ack = json.loads(reply.decode())
        if "error" in ack:
            raise FeedError(
                f"feed rejected batch seq {batch.seq} for campaign "
                f"{batch.campaign_id!r}: {ack['error']}"
            )
        return ack

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FeedClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- replay sources --------------------------------------------------------

def _context(zone: str, directory, blocklist_addresses) -> dict:
    return {
        "zone": zone,
        "directory": [dataclasses.asdict(record) for record in directory],
        "blocklist": sorted(blocklist_addresses),
    }


def context_from_result(result) -> dict:
    """Registration context from an in-memory
    :class:`~repro.core.experiment.ExperimentResult`."""
    return _context(result.config.zone, result.eco.directory,
                    result.eco.blocklist.addresses())


def context_from_bundle(bundle) -> dict:
    """Registration context from a loaded
    :class:`~repro.core.persist.AnalysisBundle`."""
    return _context(bundle.meta["config"]["zone"], bundle.directory,
                    bundle.blocklist.addresses())


def _timeline_batches(campaign_id: str, context: dict, records, entries,
                      locations, batch_size: int) -> Iterator[FeedBatch]:
    """Registration batch, then chunked time-ordered data batches.

    Ledger registration order is send order (monotonic ``sent_at``) and
    the log is monotonic in ``time``, so a two-pointer merge suffices;
    decoys win ties so a same-timestamp initial arrival never precedes
    its decoy.  Locations are Phase II products and ship last.
    """
    yield FeedBatch(campaign_id=campaign_id, seq=0, context=context)

    merged: List[tuple] = []  # (kind, payload); kind 0 = decoy, 1 = entry
    record_list, entry_list = list(records), list(entries)
    ri = ei = 0
    while ri < len(record_list) or ei < len(entry_list):
        take_record = ei >= len(entry_list) or (
            ri < len(record_list)
            and record_list[ri].sent_at <= entry_list[ei].time)
        if take_record:
            merged.append((0, record_list[ri]))
            ri += 1
        else:
            merged.append((1, entry_list[ei]))
            ei += 1

    seq = 0
    for start in range(0, len(merged), batch_size):
        seq += 1
        batch = FeedBatch(campaign_id=campaign_id, seq=seq)
        for kind, payload in merged[start:start + batch_size]:
            (batch.records if kind == 0 else batch.log_entries).append(payload)
        yield batch
    location_list = list(locations)
    for start in range(0, len(location_list), batch_size):
        seq += 1
        yield FeedBatch(campaign_id=campaign_id, seq=seq,
                        locations=location_list[start:start + batch_size])


def feed_batches_from_result(result, campaign_id: str,
                             batch_size: int = DEFAULT_BATCH_SIZE,
                             ) -> Iterator[FeedBatch]:
    """Replay an in-memory experiment result as a live feed."""
    return _timeline_batches(campaign_id, context_from_result(result),
                             result.ledger.records(), result.log,
                             result.locations, batch_size)


def feed_batches_from_bundle(bundle_dir, campaign_id: str,
                             batch_size: int = DEFAULT_BATCH_SIZE,
                             ) -> Iterator[FeedBatch]:
    """Replay an exported bundle directory as a live feed."""
    from repro.core.persist import load_bundle

    bundle = load_bundle(bundle_dir)
    return _timeline_batches(campaign_id, context_from_bundle(bundle),
                             bundle.ledger.records(), bundle.log.all(),
                             bundle.locations, batch_size)

"""Daemon wiring for ``repro serve``: feed + HTTP + checkpoints + signals.

The daemon is deliberately thin: construct (or restore) a
:class:`~repro.serve.service.MeasurementService`, bind the feed socket
and the HTTP API, then park until SIGTERM/SIGINT.  Shutdown is graceful
by default — stop accepting, then flush every campaign's state blob —
so a restart resumes from the final watermark and feeders only replay
what arrived after it.

``ready_file`` solves the bound-port discovery race for harnesses (CI,
tests) that start the daemon with ephemeral ports: once both servers are
listening, the daemon atomically writes a small JSON file with the
actual ports and its pid.
"""

import json
import os
import signal
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.core.checkpoint import CheckpointError
from repro.serve.feed import FeedServer
from repro.serve.httpapi import ReportApiServer
from repro.serve.service import MeasurementService, WatermarkPolicy


@dataclass
class ServeConfig:
    host: str = "127.0.0.1"
    http_port: int = 0
    feed_port: int = 0
    checkpoint_dir: Optional[str] = None
    watermark_records: int = 256
    watermark_seconds: float = 5.0
    ready_file: Optional[str] = None


class ServeDaemon:
    """Owns the service and both transports for one daemon lifetime."""

    def __init__(self, config: ServeConfig):
        self.config = config
        watermark = WatermarkPolicy(records=config.watermark_records,
                                    seconds=config.watermark_seconds)
        self.service = self._build_service(config, watermark)
        self.feed = FeedServer(self.service, host=config.host,
                               port=config.feed_port)
        self.http = ReportApiServer(self.service, host=config.host,
                                    port=config.http_port)
        self._shutdown = threading.Event()

    @staticmethod
    def _build_service(config: ServeConfig,
                       watermark: WatermarkPolicy) -> MeasurementService:
        if config.checkpoint_dir is not None:
            try:
                return MeasurementService.restore(config.checkpoint_dir,
                                                  watermark=watermark)
            except CheckpointError:
                # Empty or brand-new directory: start fresh (the store
                # writes its meta on construction).  A directory holding
                # *incompatible* checkpoints also lands here only if it
                # has no readable meta; mismatched formats/kinds raise
                # from load_meta with a message worth surfacing, so
                # re-raise when meta exists.
                if (Path(config.checkpoint_dir) / "meta.json").exists():
                    raise
        return MeasurementService(checkpoint_dir=config.checkpoint_dir,
                                  watermark=watermark)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.feed.start()
        self.http.start()
        if self.config.ready_file:
            self._write_ready_file()

    def _write_ready_file(self) -> None:
        target = Path(self.config.ready_file)
        temp = target.with_name(target.name + ".tmp")
        temp.write_text(json.dumps({
            "pid": os.getpid(),
            "host": self.config.host,
            "http_port": self.http.port,
            "feed_port": self.feed.port,
            "campaigns": self.service.campaign_ids(),
        }, indent=2))
        os.replace(temp, target)

    def stop(self) -> None:
        """Graceful shutdown: quiesce transports, then flush state."""
        self.feed.stop()
        self.http.stop()
        self.service.flush_all()

    def request_shutdown(self, *_signal_args) -> None:
        self._shutdown.set()

    def run_forever(self) -> None:
        """Foreground mode: park until SIGTERM/SIGINT, then stop()."""
        signal.signal(signal.SIGTERM, self.request_shutdown)
        signal.signal(signal.SIGINT, self.request_shutdown)
        self.start()
        self._shutdown.wait()
        self.stop()

"""Multi-tenant session registry with watermark checkpointing.

The :class:`MeasurementService` is the daemon's core, independent of any
transport: the socket feed (:mod:`repro.serve.feed`) and the HTTP API
(:mod:`repro.serve.httpapi`) both call straight into it.  It owns

* the campaign-id → :class:`~repro.serve.session.CampaignSession` map,
  guarded for registration races (per-campaign ingest is serialized by
  the session's own lock);
* the structured error vocabulary — ingest for an unregistered campaign
  raises :class:`UnknownCampaignError`, never a bare ``KeyError``, and
  transports render ``error.to_payload()`` verbatim;
* continuous checkpointing: after each applied batch, a campaign whose
  un-flushed tail crossed the :class:`WatermarkPolicy` record count *or*
  wall-clock age is flushed to the
  :class:`~repro.core.checkpoint.ServeCheckpointStore` (registration
  context blobs are written once, state blobs rewritten per watermark).
  There is no timer thread — an idle campaign has nothing to lose, so
  watermarks are only evaluated on ingest and on shutdown.
"""

import re
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.checkpoint import ServeCheckpointStore
from repro.core.wire import FeedBatch, encode_feed_batch
from repro.serve.session import CampaignSession
from repro.telemetry.registry import MetricsRegistry

_CAMPAIGN_ID = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}\Z")
"""Campaign ids become checkpoint file names — keep them path-safe."""


class ServeError(RuntimeError):
    """A structured, transport-renderable service error."""

    code = "serve_error"

    def to_payload(self) -> dict:
        return {"error": {"code": self.code, "message": str(self)}}


class UnknownCampaignError(ServeError):
    """Ingest or read addressed a campaign id nobody registered."""

    code = "unknown_campaign"

    def __init__(self, campaign_id: str, known: List[str]):
        super().__init__(
            f"campaign {campaign_id!r} is not registered; known campaigns: "
            f"{known if known else '(none)'}"
        )
        self.campaign_id = campaign_id
        self.known = known

    def to_payload(self) -> dict:
        payload = super().to_payload()
        payload["error"]["campaign"] = self.campaign_id
        payload["error"]["known"] = self.known
        return payload


class InvalidCampaignError(ServeError):
    """A campaign id failed validation (unsafe as a checkpoint name)."""

    code = "invalid_campaign_id"


class RegistrationError(ServeError):
    """A registration batch was malformed or conflicted."""

    code = "registration_error"


@dataclass(frozen=True)
class WatermarkPolicy:
    """When to flush a campaign's state blob.

    A flush happens when either threshold trips: ``records`` log entries
    applied since the last flush, or ``seconds`` of wall-clock age on a
    non-empty un-flushed tail.  Both are deliberately coarse — the state
    blob is O(campaign), so flushing per batch would dominate ingest.
    """

    records: int = 256
    seconds: float = 5.0


class MeasurementService:
    """Campaign registry + ingest router + watermark checkpointer."""

    def __init__(self, checkpoint_dir=None,
                 watermark: Optional[WatermarkPolicy] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 clock=time.monotonic):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.watermark = watermark if watermark is not None else WatermarkPolicy()
        self._clock = clock
        self._sessions: Dict[str, CampaignSession] = {}
        self._registry_lock = threading.Lock()
        self._store: Optional[ServeCheckpointStore] = None
        if checkpoint_dir is not None:
            self._store = ServeCheckpointStore(checkpoint_dir)
            self._store.save_meta()
        self._pending_records: Dict[str, int] = {}
        """Log records applied since the campaign's last flush."""
        self._tail_age_start: Dict[str, float] = {}
        """Clock reading when the campaign's un-flushed tail began."""
        self.started_at = clock()
        self._m_checkpoints = self.metrics.counter("serve.checkpoints")

    # -- restore -----------------------------------------------------------

    @classmethod
    def restore(cls, checkpoint_dir, watermark=None, metrics=None,
                clock=time.monotonic) -> "MeasurementService":
        """Resume every campaign found in a serve checkpoint directory.

        Campaigns with a registration blob but no state blob (killed
        before their first watermark) restart empty from the context;
        the feeder's idempotent resend replays what was lost.
        """
        store = ServeCheckpointStore(checkpoint_dir)
        store.load_meta()
        service = cls(checkpoint_dir=checkpoint_dir, watermark=watermark,
                      metrics=metrics, clock=clock)
        for campaign_id in store.campaign_ids():
            registration = store.load_context(campaign_id)
            state = store.load_state(campaign_id)
            if state is None:
                session = CampaignSession.from_context(
                    campaign_id, registration.context,
                    metrics=service.metrics)
            else:
                session = CampaignSession.restore(
                    registration, state, metrics=service.metrics)
            service._sessions[campaign_id] = session
            service._pending_records[campaign_id] = 0
        return service

    # -- registry ----------------------------------------------------------

    def campaign_ids(self) -> List[str]:
        with self._registry_lock:
            return sorted(self._sessions)

    def session(self, campaign_id: str) -> CampaignSession:
        with self._registry_lock:
            session = self._sessions.get(campaign_id)
        if session is None:
            raise UnknownCampaignError(campaign_id, self.campaign_ids())
        return session

    def register(self, batch: FeedBatch) -> dict:
        """Create a session from a registration batch (idempotent).

        Re-registering an existing campaign is acknowledged without
        effect when the zone agrees (the normal feeder-restart case) and
        rejected as a conflict when it does not.
        """
        if batch.context is None:
            raise RegistrationError(
                f"registration for {batch.campaign_id!r} carries no context"
            )
        if not _CAMPAIGN_ID.match(batch.campaign_id):
            raise InvalidCampaignError(
                f"campaign id {batch.campaign_id!r} must match "
                f"{_CAMPAIGN_ID.pattern}"
            )
        with self._registry_lock:
            existing = self._sessions.get(batch.campaign_id)
            if existing is not None:
                if existing.zone != batch.context.get("zone"):
                    raise RegistrationError(
                        f"campaign {batch.campaign_id!r} already registered "
                        f"with zone {existing.zone!r}; refusing context with "
                        f"zone {batch.context.get('zone')!r}"
                    )
                return {"campaign": batch.campaign_id, "seq": existing.seq,
                        "applied": False, "registered": True}
            session = CampaignSession.from_context(
                batch.campaign_id, batch.context, metrics=self.metrics)
            self._sessions[batch.campaign_id] = session
            self._pending_records[batch.campaign_id] = 0
        if self._store is not None:
            self._store.save_context_blob(batch.campaign_id,
                                          encode_feed_batch(batch))
        return {"campaign": batch.campaign_id, "seq": 0, "applied": True,
                "registered": True}

    # -- ingest ------------------------------------------------------------

    def ingest(self, batch: FeedBatch) -> dict:
        """Route one feed batch: registration or data."""
        if batch.context is not None:
            return self.register(batch)
        session = self.session(batch.campaign_id)
        ack = session.ingest_batch(batch)
        if ack["applied"]:
            self._note_progress(batch.campaign_id, len(batch.log_entries))
        return ack

    def _note_progress(self, campaign_id: str, log_records: int) -> None:
        if self._store is None:
            return
        now = self._clock()
        self._tail_age_start.setdefault(campaign_id, now)
        pending = self._pending_records.get(campaign_id, 0) + log_records
        self._pending_records[campaign_id] = pending
        age = now - self._tail_age_start[campaign_id]
        if (pending >= self.watermark.records
                or age >= self.watermark.seconds):
            self.checkpoint(campaign_id)

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self, campaign_id: str) -> bool:
        """Flush one campaign's state blob now; True if written."""
        if self._store is None:
            return False
        session = self.session(campaign_id)
        self._store.save_state_blob(campaign_id, session.state_blob())
        self._pending_records[campaign_id] = 0
        self._tail_age_start.pop(campaign_id, None)
        self._m_checkpoints.inc()
        return True

    def flush_all(self) -> int:
        """Flush every campaign (graceful-shutdown path)."""
        flushed = 0
        for campaign_id in self.campaign_ids():
            if self.checkpoint(campaign_id):
                flushed += 1
        return flushed

    # -- reads -------------------------------------------------------------

    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": self._clock() - self.started_at,
            "campaigns": len(self._sessions),
            "checkpointing": self._store is not None,
        }

    def summaries(self) -> List[dict]:
        return [self.session(campaign_id).summary()
                for campaign_id in self.campaign_ids()]

    def telemetry(self, campaign_id: str) -> dict:
        data = self.session(campaign_id).telemetry()
        data["checkpoint"] = {
            "enabled": self._store is not None,
            "pending_records": self._pending_records.get(campaign_id, 0),
            "flushes": self._m_checkpoints.value,
        }
        return data

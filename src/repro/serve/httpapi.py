"""Threaded HTTP report API over a :class:`MeasurementService`.

Read-only, stdlib-only (:mod:`http.server`), loopback by default.
Endpoints (all GET):

* ``/healthz`` — liveness: uptime, campaign count, checkpointing flag;
* ``/campaigns`` — per-campaign summaries (seq, counts, digest);
* ``/campaigns/<id>/report`` — the versioned report artifact as JSON
  (text + digest + version + cache disposition);
* ``/campaigns/<id>/report.txt`` — the raw report text, byte-identical
  to batch ``repro report`` over the same records (the CI diff target);
* ``/campaigns/<id>/version`` — cheap change-detection handle: the
  accumulator digest plus the last rendered report version (no render);
* ``/campaigns/<id>/telemetry`` — ingest/cache/checkpoint counters.

Unknown campaigns and unknown paths return structured JSON errors with
proper status codes — the same ``error.to_payload()`` shape the feed
socket uses.  :class:`ThreadingHTTPServer` gives one thread per request;
consistency under concurrent readers comes from the per-session lock,
not from the transport.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.serve.service import MeasurementService, ServeError, UnknownCampaignError


class _ApiHandler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a daemon serving
    # a polling CI loop would drown real diagnostics.
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass

    @property
    def service(self) -> MeasurementService:
        return self.server.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/healthz":
                self._json(200, self.service.health())
            elif path == "/campaigns":
                self._json(200, {"campaigns": self.service.summaries()})
            else:
                self._campaign_route(path)
        except UnknownCampaignError as exc:
            self._json(404, exc.to_payload())
        except ServeError as exc:
            self._json(400, exc.to_payload())
        except BrokenPipeError:
            pass

    def _campaign_route(self, path: str) -> None:
        parts = path.strip("/").split("/")
        if len(parts) != 3 or parts[0] != "campaigns":
            self._json(404, {"error": {"code": "not_found",
                                       "message": f"no route {path!r}"}})
            return
        _, campaign_id, leaf = parts
        if leaf == "report":
            text, digest, version = self.service.session(campaign_id).report()
            self._json(200, {"campaign": campaign_id, "digest": digest,
                             "version": version, "report": text})
        elif leaf == "report.txt":
            text, digest, version = self.service.session(campaign_id).report()
            self._text(200, text, extra_headers=(
                ("X-Repro-Digest", digest),
                ("X-Repro-Report-Version", str(version)),
            ))
        elif leaf == "version":
            self._json(200, self.service.session(campaign_id).version_info())
        elif leaf == "telemetry":
            self._json(200, self.service.telemetry(campaign_id))
        else:
            self._json(404, {"error": {"code": "not_found",
                                       "message": f"no endpoint {leaf!r}"}})

    # -- responses ---------------------------------------------------------

    def _json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self._send(status, "application/json", body)

    def _text(self, status: int, text: str,
              extra_headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        self._send(status, "text/plain; charset=utf-8", text.encode(),
                   extra_headers)

    def _send(self, status: int, content_type: str, body: bytes,
              extra_headers: Tuple[Tuple[str, str], ...] = ()) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


class ReportApiServer:
    """Lifecycle wrapper: bind, serve on a daemon thread, shut down."""

    def __init__(self, service: MeasurementService,
                 host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _ApiHandler)
        self._httpd.service = service  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-serve-http", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

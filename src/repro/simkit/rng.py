"""Named, seeded random streams.

A single global ``random.Random`` makes experiments fragile: adding one
draw in an unrelated module perturbs every number drawn after it.  The
:class:`RandomRouter` instead derives an independent stream per *name*
(e.g. ``"topology"``, ``"observer.yandex"``) from the experiment seed, so
components evolve independently and deterministically.
"""

import hashlib
import random
from typing import Dict


class RandomRouter:
    """Factory of deterministic, independent ``random.Random`` streams."""

    def __init__(self, seed: int):
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream seed is derived by hashing ``(seed, name)``, so the
        stream is a pure function of the experiment seed and the name —
        insensitive to creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RandomRouter":
        """Derive a child router whose streams are independent of the parent's.

        Useful when a subsystem (e.g. one observer) wants its own namespace
        of streams without coordinating names globally.
        """
        digest = hashlib.sha256(f"{self._seed}/fork:{name}".encode()).digest()
        return RandomRouter(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"RandomRouter(seed={self._seed}, streams={sorted(self._streams)})"

"""Named, seeded random streams.

A single global ``random.Random`` makes experiments fragile: adding one
draw in an unrelated module perturbs every number drawn after it.  The
:class:`RandomRouter` instead derives an independent stream per *name*
(e.g. ``"topology"``, ``"observer.yandex"``) from the experiment seed, so
components evolve independently and deterministically.
"""

import hashlib
import random
from typing import Dict


class RandomRouter:
    """Factory of deterministic, independent ``random.Random`` streams."""

    def __init__(self, seed: int):
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream seed is derived by hashing ``(seed, name)``, so the
        stream is a pure function of the experiment seed and the name —
        insensitive to creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RandomRouter":
        """Derive a child router whose streams are independent of the parent's.

        Useful when a subsystem (e.g. one observer) wants its own namespace
        of streams without coordinating names globally.
        """
        digest = hashlib.sha256(f"{self._seed}/fork:{name}".encode()).digest()
        return RandomRouter(int.from_bytes(digest[:8], "big"))

    def substreams(self, namespace: str) -> "SubstreamFactory":
        """Return a keyed substream factory rooted at this router's seed.

        See :class:`SubstreamFactory` — where :meth:`stream` hands out one
        long-lived generator whose draws depend on consumption order,
        ``substreams(ns).derive(key...)`` makes every keyed decision a pure
        function of (seed, namespace, key).
        """
        return SubstreamFactory(self._seed, namespace)

    def __repr__(self) -> str:
        return f"RandomRouter(seed={self._seed}, streams={sorted(self._streams)})"


class SubstreamFactory:
    """Derives order-independent random streams keyed by arbitrary values.

    A :meth:`RandomRouter.stream` is a single sequential generator: two
    consumers sharing it observe draws in arrival order, so any change in
    *which* consumer asks first changes what everyone gets.  That is fine
    inside one simulator, but breaks when a campaign is partitioned across
    shards that each see only a subset of arrivals.

    ``derive(*keys)`` instead returns a fresh generator seeded from
    ``(seed, namespace, keys)`` alone.  A decision keyed by, say, a domain
    or a hop address comes out identical no matter how many shards run or
    in what order requests arrive — the foundation of the sharded
    executor's determinism guarantee.  Factories are small value objects
    and pickle cleanly into worker processes.
    """

    __slots__ = ("_seed", "_namespace")

    # \x1f (unit separator) cannot appear in stream names or keys coming
    # from addresses/domains, so derived material never collides with the
    # "seed:name" format used by RandomRouter.stream.
    _SEP = "\x1f"

    def __init__(self, seed: int, namespace: str):
        self._seed = int(seed)
        self._namespace = str(namespace)

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def namespace(self) -> str:
        return self._namespace

    def derive(self, *keys: object) -> random.Random:
        """Return a fresh generator that is a pure function of the keys."""
        material = self._SEP.join(
            [str(self._seed), "sub", self._namespace, *(str(key) for key in keys)]
        )
        digest = hashlib.sha256(material.encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def scoped(self, *keys: object) -> "SubstreamFactory":
        """Narrow the namespace; ``scoped(a).derive(b) == derive(a, b)``."""
        suffix = self._SEP.join(str(key) for key in keys)
        return SubstreamFactory(self._seed, f"{self._namespace}{self._SEP}{suffix}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SubstreamFactory):
            return NotImplemented
        return (self._seed, self._namespace) == (other._seed, other._namespace)

    def __hash__(self) -> int:
        return hash((SubstreamFactory, self._seed, self._namespace))

    def __getstate__(self):
        return (self._seed, self._namespace)

    def __setstate__(self, state):
        self._seed, self._namespace = state

    def __repr__(self) -> str:
        return f"SubstreamFactory(seed={self._seed}, namespace={self._namespace!r})"

"""Event queue and simulator loop."""

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simkit.clock import VirtualClock
from repro.telemetry.registry import NULL_REGISTRY


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordering is (time, sequence) so that events scheduled for the same
    instant fire in scheduling order — a deterministic tiebreak that keeps
    campaigns reproducible.  ``slots=True`` keeps the per-event footprint
    small; paper-scale campaigns queue millions of these.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    on_cancel: Optional[Callable[[], None]] = field(
        compare=False, default=None, repr=False
    )
    """Owner notification hook — the simulator uses it to keep its pending
    counter live without scanning the heap."""

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        callback, self.on_cancel = self.on_cancel, None
        if callback is not None:
            callback()


class Simulator:
    """Minimal discrete-event simulator.

    Components schedule callbacks at absolute or relative virtual times;
    :meth:`run` drains the queue in timestamp order, advancing the shared
    :class:`VirtualClock` as it goes.
    """

    def __init__(self, clock: Optional[VirtualClock] = None, metrics=None):
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: list = []
        self._counter = itertools.count()
        self._processed = 0
        self._pending = 0
        self.label_counts: dict = {}
        """Executed-event tally per label — free introspection into what a
        campaign actually did (sends, retries, recursions, unsolicited
        emissions, cache refreshes...)."""
        # Handles are fetched once; with telemetry disabled they are
        # shared no-op singletons, keeping the event loop overhead to one
        # no-op call per operation.
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_scheduled = metrics.counter("sim.events.scheduled")
        self._m_fired = metrics.counter("sim.events.fired")
        self._m_cancelled = metrics.counter("sim.events.cancelled")
        self._m_heap_depth = metrics.gauge("sim.heap.max_depth")

    def now(self) -> float:
        return self.clock.now()

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._pending

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def _note_cancel(self) -> None:
        self._pending -= 1
        self._m_cancelled.inc()

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self.clock.now():
            raise ValueError(
                f"cannot schedule event at {time} before current time {self.clock.now()}"
            )
        event = Event(
            time=float(time),
            sequence=next(self._counter),
            action=action,
            label=label,
            on_cancel=self._note_cancel,
        )
        heapq.heappush(self._queue, event)
        self._pending += 1
        self._m_scheduled.inc()
        self._m_heap_depth.record(len(self._queue))
        return event

    def schedule_in(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.clock.now() + delay, action, label=label)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue, optionally stopping at time ``until``.

        Returns the number of events executed by this call.  Events
        scheduled exactly at ``until`` still fire; later ones stay queued.
        ``max_events`` bounds runaway feedback loops in tests.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            # Detach the hook first: a late cancel() on an already-fired
            # event must not decrement the counter a second time.
            event.on_cancel = None
            self._pending -= 1
            self.clock.advance_to(event.time)
            event.action()
            executed += 1
            self._processed += 1
            self._m_fired.inc()
            if event.label:
                self.label_counts[event.label] = \
                    self.label_counts.get(event.label, 0) + 1
        if until is not None and self.clock.now() < until:
            self.clock.advance_to(until)
        return executed

    def __repr__(self) -> str:
        return f"Simulator(now={self.clock.now()}, pending={self.pending})"

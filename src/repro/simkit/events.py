"""Event queue and simulator loop.

The queue is a bucketed calendar: events land in fixed-width virtual-time
buckets (a dict keyed by ``floor(time / width)``), each bucket a small
binary heap of ``(time, sequence, event)`` tuples, with a min-heap of
bucket keys locating the earliest non-empty bucket.  Pushes and pops stay
O(log b) in the *bucket* size instead of the whole queue, which is what
keeps a multi-million-event campaign's event loop flat — and the heap
entries are plain tuples, so ordering comparisons run at C speed.  The
observable order is exactly the classic single-heap order: ``(time,
sequence)``, globally unique, ties impossible.

For internet-scale campaigns the simulator also supports a *feeder*: a
pull hook that lazily schedules upcoming work (e.g. the streaming Phase I
planner) just ahead of the clock instead of materializing millions of
events up front.  The feeder is not an event — it consumes no sequence
numbers, fires no telemetry counters, and leaves ``label_counts``
untouched — so a fed schedule is indistinguishable from an up-front one.
"""

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simkit.clock import VirtualClock
from repro.telemetry.registry import NULL_REGISTRY

_BUCKET_WIDTH = 32.0
"""Default calendar bucket width in virtual seconds.  Phase I sends are
spaced 0.5s apart, so a bucket holds ~64 sends — big enough that bucket
churn is rare, small enough that per-bucket heaps stay tiny."""


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Ordering is (time, sequence) so that events scheduled for the same
    instant fire in scheduling order — a deterministic tiebreak that keeps
    campaigns reproducible.  ``slots=True`` keeps the per-event footprint
    small; paper-scale campaigns queue millions of these.
    """

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    on_cancel: Optional[Callable[[], None]] = field(
        compare=False, default=None, repr=False
    )
    """Owner notification hook — the simulator uses it to keep its pending
    counter live without scanning the queue."""

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        callback, self.on_cancel = self.on_cancel, None
        if callback is not None:
            callback()


class Simulator:
    """Minimal discrete-event simulator.

    Components schedule callbacks at absolute or relative virtual times;
    :meth:`run` drains the queue in timestamp order, advancing the shared
    :class:`VirtualClock` as it goes.
    """

    def __init__(self, clock: Optional[VirtualClock] = None, metrics=None,
                 bucket_width: float = _BUCKET_WIDTH):
        self.clock = clock if clock is not None else VirtualClock()
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self._width = float(bucket_width)
        self._buckets: dict = {}
        self._bucket_keys: list = []
        self._counter = itertools.count()
        self._processed = 0
        self._pending = 0
        self.label_counts: dict = {}
        """Executed-event tally per label — free introspection into what a
        campaign actually did (sends, retries, recursions, unsolicited
        emissions, cache refreshes...)."""
        self._feeder: Optional[Callable[[float], Optional[float]]] = None
        self._feed_guarantee = float("-inf")
        self._feed_margin = 0.0
        self._feed_lookahead = 0.0
        # Handles are fetched once; with telemetry disabled they are
        # shared no-op singletons, keeping the event loop overhead to one
        # no-op call per operation.
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_scheduled = metrics.counter("sim.events.scheduled")
        self._m_fired = metrics.counter("sim.events.fired")
        self._m_cancelled = metrics.counter("sim.events.cancelled")
        self._m_heap_depth = metrics.gauge("sim.heap.max_depth")
        self._m_buckets = metrics.gauge("sim.calendar.buckets")

    def now(self) -> float:
        return self.clock.now()

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._pending

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def _note_cancel(self) -> None:
        self._pending -= 1
        self._m_cancelled.inc()
        # Live depth shrank; sample it so the gauge reflects cancel-heavy
        # churn the same way it reflects pushes and pops.
        self._m_heap_depth.record(self._pending)

    # -- calendar queue ----------------------------------------------------

    def _peek(self):
        """The earliest queued ``(time, sequence, event)``, or None.

        Lazily retires bucket keys whose bucket has drained; a key may
        appear twice in the key heap when its bucket emptied and later
        refilled — the stale copy is discarded when it surfaces.
        """
        keys = self._bucket_keys
        buckets = self._buckets
        while keys:
            bucket = buckets.get(keys[0])
            if not bucket:
                heapq.heappop(keys)
                continue
            return bucket[0]
        return None

    def _pop(self):
        """Remove and return the earliest entry (``_peek`` must be truthy)."""
        key = self._bucket_keys[0]
        bucket = self._buckets[key]
        entry = heapq.heappop(bucket)
        if not bucket:
            del self._buckets[key]
            heapq.heappop(self._bucket_keys)
        return entry

    def schedule_at(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self.clock.now():
            raise ValueError(
                f"cannot schedule event at {time} before current time {self.clock.now()}"
            )
        event = Event(
            time=float(time),
            sequence=next(self._counter),
            action=action,
            label=label,
            on_cancel=self._note_cancel,
        )
        key = int(event.time // self._width)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = []
            heapq.heappush(self._bucket_keys, key)
        heapq.heappush(bucket, (event.time, event.sequence, event))
        self._pending += 1
        self._m_scheduled.inc()
        # Depth counts live (not-cancelled) events — the pre-calendar
        # gauge sampled raw heap length, which over-reported under
        # cancel-heavy churn by counting tombstones awaiting their pop.
        self._m_heap_depth.record(self._pending)
        self._m_buckets.record(len(self._buckets))
        return event

    def schedule_in(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.clock.now() + delay, action, label=label)

    # -- streaming feeder --------------------------------------------------

    def set_feeder(self, feeder: Callable[[float], Optional[float]], *,
                   margin: float, lookahead: float) -> None:
        """Install a pull hook that schedules upcoming work on demand.

        ``feeder(target)`` must schedule every deferred event whose time
        is <= ``target`` and return a *guarantee*: a virtual time such
        that all still-unscheduled work lies strictly later (the return
        must be >= ``target``).  It returns None once exhausted.

        ``margin`` is how far past the next event the schedule must be
        known before that event may fire.  It has to exceed the longest
        *discrete* delay any event handler can schedule at (e.g. the
        campaign's retry backoff ceiling): a handler firing at ``t`` may
        enqueue follow-ups at exactly ``t + backoff``, and any deferred
        event tying that instant must already hold its (lower) sequence
        number — that is what makes a fed schedule order-identical to an
        up-front one.  ``lookahead`` batches feeder calls so the hook
        runs once per chunk of virtual time, not once per event.
        """
        if margin < 0 or lookahead <= 0:
            raise ValueError(
                f"margin must be >= 0 and lookahead > 0, "
                f"got margin={margin}, lookahead={lookahead}"
            )
        self._feeder = feeder
        self._feed_margin = float(margin)
        self._feed_lookahead = float(lookahead)
        self._feed_guarantee = float("-inf")

    @property
    def feeding(self) -> bool:
        """Is a feeder installed and not yet exhausted?"""
        return self._feeder is not None

    def _pull_feed(self, target: float) -> None:
        result = self._feeder(target)
        if result is None:
            self._feeder = None
            self._feed_guarantee = float("inf")
            return
        if result < target:
            raise RuntimeError(
                f"feeder returned guarantee {result} short of target {target}"
            )
        self._feed_guarantee = result

    # -- main loop ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the queue, optionally stopping at time ``until``.

        Returns the number of events executed by this call.  Events
        scheduled exactly at ``until`` still fire; later ones stay queued.
        ``max_events`` bounds runaway feedback loops in tests.

        The clock only advances to ``until`` when the queue really
        drained past it.  In particular a ``max_events`` break leaves the
        clock at the last fired event: skipping ahead with work still
        queued before ``until`` would make the next :meth:`run` pop
        events stamped earlier than ``now()``.
        """
        executed = 0
        capped = False
        label_counts = self.label_counts
        while True:
            if max_events is not None and executed >= max_events:
                capped = True
                break
            if self._feeder is not None:
                head = self._peek()
                if head is not None:
                    # About to fire `head`: the schedule must be known
                    # through head + margin first, so any deferred event
                    # tying a follow-up head may enqueue already holds
                    # its (earlier) sequence number.
                    want = head[0] + self._feed_margin
                    if self._feed_guarantee < want:
                        self._pull_feed(want)
                        continue  # feeding may have queued earlier events
                else:
                    # Nothing queued yet — pull the next lookahead chunk
                    # (never the whole remaining plan at once; bounded
                    # memory is the point of feeding).
                    base = self._feed_guarantee
                    if base == float("-inf"):
                        base = self.clock.now()
                    horizon = (float("inf") if until is None
                               else until + self._feed_margin)
                    if base < horizon:
                        self._pull_feed(min(horizon, base + self._feed_lookahead))
                        continue
            head = self._peek()
            if head is None:
                break
            time_, _sequence, event = head
            if until is not None and time_ > until:
                break
            self._pop()
            if event.cancelled:
                continue
            # Detach the hook first: a late cancel() on an already-fired
            # event must not decrement the counter a second time.
            event.on_cancel = None
            self._pending -= 1
            self._m_heap_depth.record(self._pending)
            self.clock.advance_to(time_)
            event.action()
            executed += 1
            self._processed += 1
            self._m_fired.inc()
            if event.label:
                label_counts[event.label] = \
                    label_counts.get(event.label, 0) + 1
        if until is not None and not capped and self.clock.now() < until:
            head = self._peek()
            if head is None or head[0] > until:
                self.clock.advance_to(until)
        return executed

    def __repr__(self) -> str:
        return f"Simulator(now={self.clock.now()}, pending={self.pending})"

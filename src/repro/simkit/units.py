"""Time units for virtual-clock arithmetic.

All simulator timestamps are floats in *seconds* since campaign start.
These constants keep call sites legible (``3 * DAY`` rather than 259200).
"""

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY


def format_duration(seconds: float) -> str:
    """Render a duration in the largest sensible unit, e.g. ``"2.5d"``.

    >>> format_duration(90)
    '1.5m'
    >>> format_duration(864000)
    '10.0d'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds:.1f}s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f}m"
    if seconds < DAY:
        return f"{seconds / HOUR:.1f}h"
    return f"{seconds / DAY:.1f}d"

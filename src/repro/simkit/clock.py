"""Virtual clock shared by every simulated component."""


class VirtualClock:
    """Monotonic virtual clock measured in seconds since campaign start.

    Only the owning :class:`~repro.simkit.events.Simulator` advances the
    clock; components hold a reference and read :meth:`now`.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError(f"clock cannot start before zero, got {start}")
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises :class:`ValueError` on any attempt to move backwards; a
        backwards jump would silently corrupt every temporal analysis
        downstream, so it is treated as a programming error.
        """
        if timestamp < self._now:
            raise ValueError(
                f"clock cannot move backwards: at {self._now}, asked for {timestamp}"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now!r})"

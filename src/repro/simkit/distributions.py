"""Delay distributions used by observer and resolver behaviour models.

The paper's Figure 4/7 CDFs are multi-modal: a spike of benign resolver
retries under one minute, then mass at hours and days.  :class:`Mixture`
composes simple components into those shapes; :class:`Empirical` replays a
bucketed CDF directly.
"""

import bisect
import math
import random
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple


class Distribution(ABC):
    """A non-negative random variable sampled with an explicit RNG.

    Distributions carry no RNG of their own: the caller supplies the stream
    so determinism remains a property of the experiment seed.
    """

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one value (seconds, for delay distributions)."""

    def sample_many(self, rng: random.Random, n: int) -> List[float]:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        return [self.sample(rng) for _ in range(n)]


class Constant(Distribution):
    """Always the same value. Useful for deterministic protocol timers."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError(f"constant delay must be non-negative, got {value}")
        self.value = float(value)

    def sample(self, rng: random.Random) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Constant({self.value})"


class Uniform(Distribution):
    """Uniform over ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got low={low}, high={high}")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class Exponential(Distribution):
    """Exponential with the given mean (not rate)."""

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self.mean = float(mean)

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"Exponential(mean={self.mean})"


class LogNormal(Distribution):
    """Log-normal parameterized by the *median* and a shape sigma.

    Medians are far easier to reason about than mu when matching a CDF:
    ``LogNormal(median=2*DAY, sigma=0.8)`` puts half the mass past two days.
    """

    def __init__(self, median: float, sigma: float):
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.median = float(median)
        self.sigma = float(sigma)
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self._mu, self.sigma)

    def __repr__(self) -> str:
        return f"LogNormal(median={self.median}, sigma={self.sigma})"


class Mixture(Distribution):
    """Weighted mixture of component distributions.

    ``Mixture([(0.6, Uniform(0, 60)), (0.4, LogNormal(2*DAY, 0.5))])``
    reproduces the "retry spike plus long tail" shape of Figure 4.
    """

    def __init__(self, components: Sequence[Tuple[float, Distribution]]):
        if not components:
            raise ValueError("mixture needs at least one component")
        weights = [weight for weight, _ in components]
        if any(weight < 0 for weight in weights):
            raise ValueError(f"weights must be non-negative, got {weights}")
        total = sum(weights)
        if total <= 0:
            raise ValueError("mixture weights must sum to a positive value")
        self.components: List[Tuple[float, Distribution]] = []
        cumulative = 0.0
        for weight, dist in components:
            cumulative += weight / total
            self.components.append((cumulative, dist))
        # Guard against float drift so the final bucket always catches 1.0.
        last_weight, last_dist = self.components[-1]
        self.components[-1] = (1.0, last_dist)

    def sample(self, rng: random.Random) -> float:
        point = rng.random()
        cutoffs = [cutoff for cutoff, _ in self.components]
        index = bisect.bisect_left(cutoffs, point)
        return self.components[index][1].sample(rng)

    def __repr__(self) -> str:
        return f"Mixture({len(self.components)} components)"


class Empirical(Distribution):
    """Piecewise-uniform distribution over explicit buckets.

    ``Empirical([(0, 60, 0.5), (3600, 86400, 0.5)])`` draws half the mass
    uniformly in the first minute and half between one hour and one day.
    Buckets are ``(low, high, weight)`` and may be unsorted.
    """

    def __init__(self, buckets: Sequence[Tuple[float, float, float]]):
        if not buckets:
            raise ValueError("empirical distribution needs at least one bucket")
        for low, high, weight in buckets:
            if low < 0 or high < low:
                raise ValueError(f"invalid bucket bounds ({low}, {high})")
            if weight < 0:
                raise ValueError(f"bucket weight must be non-negative, got {weight}")
        total = sum(weight for _, _, weight in buckets)
        if total <= 0:
            raise ValueError("bucket weights must sum to a positive value")
        self._mixture = Mixture([(weight, Uniform(low, high)) for low, high, weight in buckets])

    def sample(self, rng: random.Random) -> float:
        return self._mixture.sample(rng)

    def __repr__(self) -> str:
        return f"Empirical({len(self._mixture.components)} buckets)"

"""Discrete-event simulation kit underpinning the measurement substrate.

The paper's experiment runs for two wall-clock months; shadowing exhibitors
replay observed data minutes to weeks after the triggering decoy.  Every
component in this reproduction therefore operates on *virtual* time supplied
by a :class:`~repro.simkit.events.Simulator`, and draws randomness from
named, seeded streams (:class:`~repro.simkit.rng.RandomRouter`) so that a
campaign is bit-for-bit reproducible from its seed.
"""

from repro.simkit.clock import VirtualClock
from repro.simkit.distributions import (
    Constant,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    Mixture,
    Uniform,
)
from repro.simkit.events import Event, Simulator
from repro.simkit.rng import RandomRouter, SubstreamFactory
from repro.simkit.units import DAY, HOUR, MINUTE, SECOND, WEEK, format_duration

__all__ = [
    "VirtualClock",
    "Simulator",
    "Event",
    "RandomRouter",
    "SubstreamFactory",
    "Distribution",
    "Constant",
    "Uniform",
    "Exponential",
    "LogNormal",
    "Mixture",
    "Empirical",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "format_duration",
]
